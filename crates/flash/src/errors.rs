//! Bit-error sampling and uncorrectable-page probability.
//!
//! [`CellModel`] gives a raw bit error rate; this
//! module turns it into concrete flipped bits on reads (for the device
//! simulator) and into page-level uncorrectable probabilities (for FTL
//! scrubbing and retirement policy, §4.3 of the paper).

use crate::cell::{CellModel, CellState};
use crate::density::{CellDensity, ProgramMode};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error model: cell physics plus sampling helpers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorModel {
    /// The underlying threshold-voltage model.
    pub cell: CellModel,
}

impl ErrorModel {
    /// Model for a given physical cell density.
    pub fn for_density(density: CellDensity) -> Self {
        ErrorModel {
            cell: CellModel::for_density(density),
        }
    }

    /// Raw bit error rate for `mode` under stress `state`.
    pub fn rber(&self, mode: ProgramMode, state: CellState) -> f64 {
        self.cell.rber(mode, state)
    }

    /// Samples the number of bit errors in `nbits` independent bits each
    /// flipping with probability `p`.
    ///
    /// Uses the exact-ish regime split standard for simulators: inverse
    /// CDF Poisson sampling for small means, a normal approximation for
    /// large ones. Both are accurate for the `p <= 1e-2` regime flash
    /// operates in. Saturated probabilities (`p > 0.5`, which the RBER
    /// clamp produces at deep end of life) sample the *complement* —
    /// `nbits` minus a single draw at `1 - p` — so every regime costs
    /// one draw instead of the `nbits` per-bit coin flips the old
    /// degenerate branch burned (≈32k `gen_bool` calls per page read).
    /// The saturated regime therefore consumes a different RNG stream
    /// than before; see EXPERIMENTS.md for the trajectory note.
    pub fn sample_error_count<R: Rng + ?Sized>(rng: &mut R, nbits: usize, p: f64) -> usize {
        if p <= 0.0 || nbits == 0 {
            return 0;
        }
        if p >= 1.0 {
            return nbits;
        }
        if p > 0.5 {
            // Binomial symmetry: errors = nbits - successes(1 - p). The
            // complement probability is < 0.5, landing in the Poisson /
            // normal machinery below with a single draw.
            return nbits - Self::sample_error_count(rng, nbits, 1.0 - p);
        }
        let lambda = nbits as f64 * p;
        if lambda < 50.0 {
            // Inverse-CDF Poisson.
            let u: f64 = rng.gen();
            let mut cumulative = (-lambda).exp();
            let mut term = cumulative;
            let mut k = 0usize;
            while u > cumulative && k < nbits {
                k += 1;
                term *= lambda / k as f64;
                cumulative += term;
                if term < 1e-300 {
                    break;
                }
            }
            k.min(nbits)
        } else {
            // Normal approximation to Binomial(n, p).
            let sigma = (lambda * (1.0 - p)).sqrt();
            let z = sample_standard_normal(rng);
            ((lambda + sigma * z).round().max(0.0) as usize).min(nbits)
        }
    }

    /// Samples `count` distinct bit positions in `[0, nbits)`.
    pub fn sample_error_positions<R: Rng + ?Sized>(
        rng: &mut R,
        nbits: usize,
        count: usize,
    ) -> Vec<usize> {
        let count = count.min(nbits);
        if count == 0 {
            return Vec::new();
        }
        // Rejection sampling is fast because error counts are tiny
        // relative to page size in every non-degenerate regime.
        if count * 4 < nbits {
            let mut seen = std::collections::HashSet::with_capacity(count);
            let mut out = Vec::with_capacity(count);
            while out.len() < count {
                let pos = rng.gen_range(0..nbits);
                if seen.insert(pos) {
                    out.push(pos);
                }
            }
            out
        } else {
            // Dense regime: partial Fisher-Yates over all positions.
            let mut all: Vec<usize> = (0..nbits).collect();
            for i in 0..count {
                let j = rng.gen_range(i..nbits);
                all.swap(i, j);
            }
            all.truncate(count);
            all
        }
    }

    /// Flips `count` random distinct bits of `data` in place and returns
    /// the flipped bit positions.
    pub fn inject_errors<R: Rng + ?Sized>(
        rng: &mut R,
        data: &mut [u8],
        count: usize,
    ) -> Vec<usize> {
        let nbits = data.len() * 8;
        let positions = Self::sample_error_positions(rng, nbits, count);
        for &pos in &positions {
            if let Some(byte) = data.get_mut(pos / 8) {
                *byte ^= 1 << (pos % 8);
            }
        }
        positions
    }

    /// Probability that a codeword of `codeword_bits` bits at raw bit
    /// error rate `rber` contains more than `correctable` errors (i.e. is
    /// uncorrectable by a `t = correctable` code).
    ///
    /// Uses a Poisson tail for small means and a Gaussian tail beyond.
    pub fn p_uncorrectable(rber: f64, codeword_bits: usize, correctable: usize) -> f64 {
        if rber <= 0.0 {
            return 0.0;
        }
        let lambda = codeword_bits as f64 * rber.min(0.5);
        if lambda < 500.0 {
            // P(X > t) = sum_{k>t} e^-l l^k / k!, summed directly to avoid
            // the catastrophic cancellation of `1 - CDF` for tiny tails.
            let mut term = (-lambda).exp();
            if term == 0.0 {
                // lambda large enough to underflow exp(-lambda): tail ~ 1.
                return 1.0;
            }
            for k in 1..=correctable {
                term *= lambda / k as f64;
            }
            let mut tail = 0.0;
            let mut k = correctable as f64 + 1.0;
            loop {
                term *= lambda / k;
                tail += term;
                // Terms shrink once k > lambda; stop when they no longer
                // contribute.
                if k > lambda && term < tail * 1e-15 + 1e-300 {
                    break;
                }
                k += 1.0;
            }
            tail.clamp(0.0, 1.0)
        } else {
            let sigma = lambda.sqrt();
            let z = (correctable as f64 + 0.5 - lambda) / sigma;
            crate::cell::q_function(z)
        }
    }

    /// Expected number of bit errors on a read of `nbits` bits.
    pub fn expected_errors(&self, mode: ProgramMode, state: CellState, nbits: usize) -> f64 {
        self.rber(mode, state) * nbits as f64
    }
}

/// Samples a standard normal variate via Box–Muller.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_count_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(7);
        let nbits = 16 * 1024 * 8;
        let p = 1e-3;
        let trials = 2000;
        let total: usize = (0..trials)
            .map(|_| ErrorModel::sample_error_count(&mut rng, nbits, p))
            .sum();
        let mean = total as f64 / trials as f64;
        let expect = nbits as f64 * p;
        assert!(
            (mean / expect - 1.0).abs() < 0.05,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn sample_count_zero_for_zero_p() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(ErrorModel::sample_error_count(&mut rng, 4096, 0.0), 0);
        assert_eq!(ErrorModel::sample_error_count(&mut rng, 0, 0.5), 0);
    }

    #[test]
    fn sample_count_large_lambda_uses_normal_path() {
        let mut rng = StdRng::seed_from_u64(9);
        let nbits = 1 << 20;
        let p = 1e-3; // lambda ~ 1049 -> normal path
        let trials = 500;
        let total: usize = (0..trials)
            .map(|_| ErrorModel::sample_error_count(&mut rng, nbits, p))
            .sum();
        let mean = total as f64 / trials as f64;
        let expect = nbits as f64 * p;
        assert!((mean / expect - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sample_count_saturated_p_uses_single_complement_draw() {
        let nbits = 16 * 1024 * 8;
        // The saturated regime must track its mean without per-bit draws:
        // a full page at p = 0.9 consumed ~131k gen_bool calls before,
        // one normal draw now. Mean check over many trials.
        let mut rng = StdRng::seed_from_u64(23);
        for &p in &[0.5, 0.6, 0.9, 0.99] {
            let trials = 300;
            let total: usize = (0..trials)
                .map(|_| ErrorModel::sample_error_count(&mut rng, nbits, p))
                .sum();
            let mean = total as f64 / trials as f64;
            let expect = nbits as f64 * p;
            assert!(
                (mean / expect - 1.0).abs() < 0.05,
                "p={p}: mean {mean} vs expected {expect}"
            );
        }
        // Certainty is exact, with no randomness consumed.
        let mut a = StdRng::seed_from_u64(5);
        assert_eq!(ErrorModel::sample_error_count(&mut a, 4096, 1.0), 4096);
        assert_eq!(ErrorModel::sample_error_count(&mut a, 4096, 2.0), 4096);
    }

    #[test]
    fn sample_count_is_deterministic_per_seed() {
        for &p in &[1e-4, 0.3, 0.5, 0.8] {
            let mut a = StdRng::seed_from_u64(99);
            let mut b = StdRng::seed_from_u64(99);
            for _ in 0..50 {
                assert_eq!(
                    ErrorModel::sample_error_count(&mut a, 17408, p),
                    ErrorModel::sample_error_count(&mut b, 17408, p),
                );
            }
        }
    }

    #[test]
    fn positions_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for &count in &[0usize, 1, 17, 900, 4096] {
            let pos = ErrorModel::sample_error_positions(&mut rng, 4096, count);
            assert_eq!(pos.len(), count.min(4096));
            let set: std::collections::HashSet<_> = pos.iter().collect();
            assert_eq!(set.len(), pos.len(), "duplicates at count {count}");
            assert!(pos.iter().all(|&p| p < 4096));
        }
    }

    #[test]
    fn inject_flips_exactly_count_bits() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut data = vec![0u8; 512];
        let flipped = ErrorModel::inject_errors(&mut rng, &mut data, 33);
        assert_eq!(flipped.len(), 33);
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 33);
    }

    #[test]
    fn inject_is_involutive() {
        let mut rng = StdRng::seed_from_u64(17);
        let original: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
        let mut data = original.clone();
        let flipped = ErrorModel::inject_errors(&mut rng, &mut data, 40);
        // Flipping the same positions again restores the data.
        for pos in flipped {
            data[pos / 8] ^= 1 << (pos % 8);
        }
        assert_eq!(data, original);
    }

    #[test]
    fn p_uncorrectable_monotonic_in_rber() {
        let mut prev = -1.0;
        for i in 1..10 {
            let rber = 10f64.powi(-i);
            let p = ErrorModel::p_uncorrectable(rber, 8 * 1024 * 9, 40);
            assert!((0.0..=1.0).contains(&p));
            // Higher rber (earlier in iteration order is *higher*) means
            // higher uncorrectable probability.
            if prev >= 0.0 {
                assert!(p <= prev, "rber {rber}: {p} > {prev}");
            }
            prev = p;
        }
    }

    #[test]
    fn p_uncorrectable_edges() {
        assert_eq!(ErrorModel::p_uncorrectable(0.0, 9000, 40), 0.0);
        // At rber 0.5 virtually every codeword is uncorrectable.
        let p = ErrorModel::p_uncorrectable(0.5, 9000, 40);
        assert!(p > 0.999, "{p}");
        // t = n can always correct.
        let p = ErrorModel::p_uncorrectable(1e-3, 100, 100);
        assert!(p < 1e-9, "{p}");
    }

    #[test]
    fn p_uncorrectable_matches_poisson_hand_calc() {
        // lambda = 1, t = 0: P(X > 0) = 1 - e^-1.
        let p = ErrorModel::p_uncorrectable(1.0 / 1000.0, 1000, 0);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
    }
}
