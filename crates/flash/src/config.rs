//! Device configuration presets.

use crate::density::CellDensity;
use crate::geometry::Geometry;
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};

/// Configuration for a [`FlashDevice`](crate::device::FlashDevice).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Array shape.
    pub geometry: Geometry,
    /// Physical cell density of the array.
    pub physical_density: CellDensity,
    /// Timing parameters.
    pub timing: TimingModel,
    /// RNG seed for error injection (simulations are reproducible).
    pub seed: u64,
}

impl DeviceConfig {
    /// Minimal device for unit tests: 4 MiB, single channel.
    pub fn tiny(density: CellDensity) -> Self {
        DeviceConfig {
            geometry: Geometry::tiny(),
            physical_density: density,
            timing: TimingModel::default(),
            seed: 0xC0FFEE,
        }
    }

    /// Small simulation device (~64 MiB user data): enough blocks for GC
    /// and wear-leveling behaviour to be representative while keeping
    /// simulations fast.
    pub fn sim_small(density: CellDensity) -> Self {
        DeviceConfig {
            geometry: Geometry {
                channels: 2,
                dies_per_channel: 1,
                planes_per_die: 2,
                blocks_per_plane: 64,
                pages_per_block: 64,
                page_bytes: 4096,
                spare_bytes: 256,
            },
            physical_density: density,
            timing: TimingModel::default(),
            seed: 0xC0FFEE,
        }
    }

    /// Phone-class UFS-like device (~512 MiB scaled stand-in for a
    /// 512 GB part; simulations scale workloads by the same factor).
    pub fn phone_ufs(density: CellDensity) -> Self {
        DeviceConfig {
            geometry: Geometry {
                channels: 2,
                dies_per_channel: 2,
                planes_per_die: 2,
                blocks_per_plane: 256,
                pages_per_block: 64,
                page_bytes: 4096,
                spare_bytes: 256,
            },
            physical_density: density,
            timing: TimingModel::default(),
            seed: 0xC0FFEE,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_capacities() {
        let tiny = DeviceConfig::tiny(CellDensity::Tlc);
        assert_eq!(tiny.geometry.raw_bytes(), 4 * 1024 * 1024);
        let small = DeviceConfig::sim_small(CellDensity::Tlc);
        assert_eq!(small.geometry.raw_bytes(), 64 * 1024 * 1024);
        let phone = DeviceConfig::phone_ufs(CellDensity::Tlc);
        assert_eq!(phone.geometry.raw_bytes(), 512 * 1024 * 1024);
    }

    #[test]
    fn with_seed_overrides() {
        let c = DeviceConfig::tiny(CellDensity::Qlc).with_seed(42);
        assert_eq!(c.seed, 42);
    }
}
