//! Device geometry: channels, dies, planes, blocks and pages.
//!
//! Addressing follows the usual NAND hierarchy. Blocks are the erase unit
//! and pages the program/read unit (§2.1 of the paper). All address types
//! are plain value types so they can be freely copied through the FTL.

use serde::{Deserialize, Serialize};

/// Physical shape of a flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Independent controller channels.
    pub channels: u32,
    /// Dies (LUNs) per channel.
    pub dies_per_channel: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block.
    pub pages_per_block: u32,
    /// User-data bytes per page (at native density).
    pub page_bytes: u32,
    /// Out-of-band (spare) bytes per page, used for ECC and metadata.
    pub spare_bytes: u32,
}

impl Geometry {
    /// A small geometry suitable for unit tests: 64 blocks of 32 pages of
    /// 2 KiB (4 MiB total).
    pub fn tiny() -> Self {
        Geometry {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 32,
            page_bytes: 2048,
            spare_bytes: 128,
        }
    }

    /// Total number of erase blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.channels as u64
            * self.dies_per_channel as u64
            * self.planes_per_die as u64
            * self.blocks_per_plane as u64
    }

    /// Total number of pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw user-data capacity in bytes at native density.
    pub fn raw_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Bytes in one erase block (user data only).
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Converts a flat block index into a structured address.
    ///
    /// Blocks are numbered plane-major: consecutive indices walk blocks
    /// within a plane, then planes, dies and channels.
    pub fn block_addr(&self, index: u64) -> BlockAddr {
        debug_assert!(index < self.total_blocks());
        // Remainders of a u32 divisor always fit u32; the fallbacks are
        // unreachable because the geometry validates its fields nonzero.
        let narrow = |value: u64| u32::try_from(value).unwrap_or(u32::MAX);
        let per_plane = self.blocks_per_plane as u64;
        let per_die = self.planes_per_die as u64;
        let per_channel = self.dies_per_channel as u64;
        let block = narrow(index.checked_rem(per_plane).unwrap_or(0));
        let rest = index.checked_div(per_plane).unwrap_or(0);
        let plane = narrow(rest.checked_rem(per_die).unwrap_or(0));
        let rest = rest.checked_div(per_die).unwrap_or(0);
        let die = narrow(rest.checked_rem(per_channel).unwrap_or(0));
        let channel = narrow(rest.checked_div(per_channel).unwrap_or(0));
        BlockAddr {
            channel,
            die,
            plane,
            block,
        }
    }

    /// Converts a structured block address back into its flat index.
    pub fn block_index(&self, addr: BlockAddr) -> u64 {
        ((addr.channel as u64 * self.dies_per_channel as u64 + addr.die as u64)
            * self.planes_per_die as u64
            + addr.plane as u64)
            * self.blocks_per_plane as u64
            + addr.block as u64
    }

    /// Flat page index for an address.
    pub fn page_index(&self, addr: PageAddr) -> u64 {
        self.block_index(addr.block) * self.pages_per_block as u64 + addr.page as u64
    }

    /// Converts a flat page index into a structured address.
    pub fn page_addr(&self, index: u64) -> PageAddr {
        debug_assert!(index < self.total_pages());
        let per_block = self.pages_per_block as u64;
        let block = self.block_addr(index.checked_div(per_block).unwrap_or(0));
        let page = u32::try_from(index.checked_rem(per_block).unwrap_or(0)).unwrap_or(u32::MAX);
        PageAddr { block, page }
    }

    /// Iterator over all flat block indices.
    pub fn blocks(&self) -> impl Iterator<Item = u64> {
        0..self.total_blocks()
    }
}

/// Address of an erase block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Channel index.
    pub channel: u32,
    /// Die within the channel.
    pub die: u32,
    /// Plane within the die.
    pub plane: u32,
    /// Block within the plane.
    pub block: u32,
}

/// Address of a page (program/read unit) inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr {
    /// The containing erase block.
    pub block: BlockAddr,
    /// Page offset within the block.
    pub page: u32,
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "c{}/d{}/p{}/b{}",
            self.channel, self.die, self.plane, self.block
        )
    }
}

impl std::fmt::Display for PageAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/pg{}", self.block, self.page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn multi() -> Geometry {
        Geometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 10,
            pages_per_block: 16,
            page_bytes: 4096,
            spare_bytes: 256,
        }
    }

    #[test]
    fn totals() {
        let g = multi();
        assert_eq!(g.total_blocks(), 2 * 2 * 2 * 10);
        assert_eq!(g.total_pages(), 80 * 16);
        assert_eq!(g.raw_bytes(), 80 * 16 * 4096);
        assert_eq!(g.block_bytes(), 16 * 4096);
    }

    #[test]
    fn block_roundtrip_all() {
        let g = multi();
        for i in g.blocks() {
            let a = g.block_addr(i);
            assert_eq!(g.block_index(a), i, "block {i} did not roundtrip");
            assert!(a.channel < g.channels);
            assert!(a.die < g.dies_per_channel);
            assert!(a.plane < g.planes_per_die);
            assert!(a.block < g.blocks_per_plane);
        }
    }

    #[test]
    fn page_roundtrip_all() {
        let g = Geometry::tiny();
        for i in 0..g.total_pages() {
            let a = g.page_addr(i);
            assert_eq!(g.page_index(a), i);
        }
    }

    #[test]
    fn block_zero_is_origin() {
        let g = multi();
        let a = g.block_addr(0);
        assert_eq!((a.channel, a.die, a.plane, a.block), (0, 0, 0, 0));
    }

    #[test]
    fn consecutive_indices_walk_blocks_first() {
        let g = multi();
        let a0 = g.block_addr(0);
        let a1 = g.block_addr(1);
        assert_eq!(a1.block, a0.block + 1);
        assert_eq!(a1.plane, a0.plane);
    }

    #[test]
    fn display_is_stable() {
        let g = multi();
        let a = g.page_addr(17);
        let s = a.to_string();
        assert!(s.contains("pg"), "{s}");
    }
}
