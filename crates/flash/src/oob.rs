//! Per-page out-of-band (OOB) metadata.
//!
//! Real NAND controllers tuck a few bytes of mapping metadata into each
//! page's spare area so the L2P map can be rebuilt after a power loss.
//! In this simulator the ECC parity already consumes nearly the whole
//! spare region, so OOB metadata is modelled as a sidecar record stored
//! atomically with the page contents by
//! [`FlashDevice::program_with_oob`](crate::FlashDevice::program_with_oob)
//! and read back (without the data payload) by
//! [`FlashDevice::read_oob`](crate::FlashDevice::read_oob).
//!
//! A page whose program was interrupted by a power cut is *torn*: its
//! OOB record is stored with a corrupted CRC, so recovery can detect and
//! discard it exactly as real firmware discards a page whose OOB fails
//! its checksum.

/// What a programmed page holds, from the FTL's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageKind {
    /// Host or GC data addressed by an LPN.
    Data,
    /// A chunk of an FTL checkpoint (the `lpn` field carries the chunk
    /// index within the checkpoint instead of a logical page number).
    Checkpoint,
}

/// Out-of-band metadata written atomically with a page program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OobMeta {
    /// Logical page number (for [`PageKind::Data`]) or checkpoint chunk
    /// index (for [`PageKind::Checkpoint`]).
    pub lpn: u64,
    /// Monotonic sequence number assigned by the FTL; recovery resolves
    /// duplicate LPNs latest-sequence-wins.
    pub seq: u64,
    /// Placement stream tag (SYS/SPARE data, GC, parity, ...).
    pub stream: u8,
    /// Record kind.
    pub kind: PageKind,
    /// CRC over the fields above; a mismatch marks the page torn.
    pub crc: u32,
}

impl OobMeta {
    /// OOB record for a data page.
    pub fn data(lpn: u64, seq: u64, stream: u8) -> Self {
        Self::sealed(lpn, seq, stream, PageKind::Data)
    }

    /// OOB record for a checkpoint chunk.
    pub fn checkpoint(chunk: u64, seq: u64, stream: u8) -> Self {
        Self::sealed(chunk, seq, stream, PageKind::Checkpoint)
    }

    fn sealed(lpn: u64, seq: u64, stream: u8, kind: PageKind) -> Self {
        let mut meta = OobMeta {
            lpn,
            seq,
            stream,
            kind,
            crc: 0,
        };
        meta.crc = meta.compute_crc();
        meta
    }

    /// Whether the stored CRC matches the fields; `false` means the page
    /// is torn (program interrupted by a power cut) and must be
    /// discarded by recovery.
    pub fn is_valid(&self) -> bool {
        self.crc == self.compute_crc()
    }

    /// The same record with its CRC deliberately corrupted, as stored
    /// for a torn page.
    pub(crate) fn torn(mut self) -> Self {
        self.crc ^= 0xDEAD_BEEF;
        self
    }

    // sos-lint: allow(panic-path, "constant ranges into a fixed [u8; 18] buffer")
    fn compute_crc(&self) -> u32 {
        let mut bytes = [0u8; 18];
        bytes[..8].copy_from_slice(&self.lpn.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.seq.to_le_bytes());
        bytes[16] = self.stream;
        bytes[17] = match self.kind {
            PageKind::Data => 0,
            PageKind::Checkpoint => 1,
        };
        crc32(&bytes)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, bitwise) over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_oob_validates() {
        let meta = OobMeta::data(42, 7, 3);
        assert!(meta.is_valid());
        assert_eq!(meta.kind, PageKind::Data);
    }

    #[test]
    fn torn_oob_fails_validation() {
        let meta = OobMeta::data(42, 7, 3).torn();
        assert!(!meta.is_valid());
    }

    #[test]
    fn distinct_fields_give_distinct_crcs() {
        let a = OobMeta::data(1, 1, 0);
        let b = OobMeta::data(2, 1, 0);
        let c = OobMeta::checkpoint(1, 1, 0);
        assert_ne!(a.crc, b.crc);
        assert_ne!(a.crc, c.crc);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // Standard check value for CRC-32/IEEE over "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
