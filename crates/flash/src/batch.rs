//! Block-batched error-count sampling.
//!
//! The naive read path draws one error count per page read —
//! [`ErrorModel::sample_error_count`](crate::errors::ErrorModel::sample_error_count)
//! costs an `exp` and an inverse-CDF walk per draw. In the regime flash
//! actually operates in (small per-page mean error counts, Poisson
//! sampling), the draws for consecutive reads of a block share the same
//! static RBER — exactly the `(mode, pec, retention, page type)` key the
//! per-block [`RberCache`](crate::rbercache::RberCache) memoizes.
//!
//! [`ErrorBatcher`] exploits a classical identity: a Poisson process
//! split uniformly over `P` cells yields `P` *independent* Poisson
//! variables of the per-cell mean. One draw of
//! `K ~ Poisson(P · nbits · p₀)` partitioned multinomially over `P`
//! slots therefore gives a queue of per-read error counts whose joint
//! distribution is identical to `P` independent per-read draws — one
//! `exp` and one inverse-CDF walk amortized over `P` reads.
//!
//! Read disturb grows the per-read probability slightly between reads
//! (`p_i = p₀ · m_i / m₀`, `m` the disturb multiplier, monotone in the
//! read count). Poisson superposition keeps the batch exact: each read
//! adds an independent `Poisson(nbits · base · (m_i − m₀))` *top-up*
//! whose mean is the disturb growth since the batch was drawn, so
//! `slot + top-up ~ Poisson(nbits · base · m_i)` — the same
//! distribution the per-page path samples. The top-up draw costs one
//! uniform in the common case: `u ≤ 1 − λ` proves the count is zero
//! without evaluating `exp(−λ)`, because `1 − λ ≤ exp(−λ)`.
//!
//! The per-page path is kept (see
//! [`ErrorSampling`](crate::device::ErrorSampling)) as the oracle for
//! the distribution-equivalence proptest; batching changes which RNG
//! stream values are consumed, so sampled trajectories differ draw by
//! draw while remaining identically distributed.

use crate::density::ProgramMode;
use rand::Rng;

/// Reads covered by one batch draw.
pub(crate) const BATCH_SLOTS: usize = 32;

/// Largest per-read mean error count the batcher accepts; beyond this
/// the per-page draw is no cheaper than the batch bookkeeping.
const MAX_LAMBDA: f64 = 2.0;

/// Largest per-bit probability the batcher accepts: keeps the batch far
/// from the `rber ≤ 0.5` clamp so the Poisson split stays exact.
const MAX_P: f64 = 0.25;

/// Upper bound on concurrent batches per block (distinct retention ages
/// × page types); reached only by pathological retention patterns, in
/// which case the batcher resets and re-fills.
const MAX_ENTRIES: usize = 16;

/// One batch: a queue of pre-partitioned error counts for upcoming
/// reads sharing a static RBER.
#[derive(Debug, Clone)]
struct BatchEntry {
    /// Bit pattern of the static RBER product (retention age and page
    /// type are folded into this value by construction).
    key: u64,
    /// `nbits × static product` — scales disturb top-ups.
    scale: f64,
    /// Disturb multiplier when the batch was drawn.
    m0: f64,
    /// Block read count when the batch was drawn; a program resets the
    /// count, which invalidates the batch (its `m0` would overshoot).
    base_reads: u64,
    /// Next slot to consume.
    next: usize,
    /// Pre-partitioned per-read error counts.
    counts: [u16; BATCH_SLOTS],
}

/// Per-block batched error-count sampler.
#[derive(Debug, Clone, Default)]
pub(crate) struct ErrorBatcher {
    epoch: Option<(ProgramMode, u32)>,
    entries: Vec<BatchEntry>,
}

impl ErrorBatcher {
    /// Samples this read's error count from the block batch, or returns
    /// `None` when the regime is out of the batcher's envelope (caller
    /// falls back to the per-page draw).
    ///
    /// `base` is the static RBER product (wear, retention, page type),
    /// `m` the disturb multiplier of *this* read, `reads` the block's
    /// read count.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sample<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        mode: ProgramMode,
        pec: u32,
        base: f64,
        m: f64,
        reads: u64,
        nbits: usize,
    ) -> Option<usize> {
        let p = base * m;
        let lambda = nbits as f64 * p;
        if !(p > 0.0 && p < MAX_P) || lambda > MAX_LAMBDA {
            return None;
        }
        if self.epoch != Some((mode, pec)) {
            self.entries.clear();
            self.epoch = Some((mode, pec));
        }
        let key = base.to_bits();
        let slot = match self.entry_index(key, reads) {
            Some(at) => at,
            None => self.refill(rng, key, base, m, reads, nbits),
        };
        // sos-lint: allow(panic-path, "entry_index/refill return an index into the live entries vector")
        let entry = &mut self.entries[slot];
        // sos-lint: allow(panic-path, "entry_index only returns entries with next < BATCH_SLOTS and refill hands back a fresh entry with next = 0; counts is a BATCH_SLOTS-sized array")
        let count = entry.counts[entry.next] as usize;
        entry.next += 1;
        // Disturb top-up: the reads consumed since the batch was drawn
        // raised this read's mean by `scale × (m − m0)`.
        let extra_lambda = entry.scale * (m - entry.m0);
        let extra = sample_topup(rng, extra_lambda);
        Some(count + extra)
    }

    /// Position of a live entry for `key`, if one has unconsumed slots
    /// and was drawn at or below the current read count.
    fn entry_index(&self, key: u64, reads: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.key == key && e.next < BATCH_SLOTS && e.base_reads <= reads)
    }

    /// Draws a fresh batch for `key`, replacing a stale entry for the
    /// same key if present.
    // sos-lint: allow(panic-path, "the written index is either a live position or the freshly pushed tail")
    fn refill<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        key: u64,
        base: f64,
        m: f64,
        reads: u64,
        nbits: usize,
    ) -> usize {
        let lambda0 = nbits as f64 * base * m;
        // One Poisson draw for all slots, split multinomially: each slot
        // is then an independent Poisson(lambda0).
        let total = sample_poisson(rng, lambda0 * BATCH_SLOTS as f64);
        let mut counts = [0u16; BATCH_SLOTS];
        for _ in 0..total {
            let slot = rng.gen_range(0..BATCH_SLOTS);
            counts[slot] = counts[slot].saturating_add(1);
        }
        let entry = BatchEntry {
            key,
            scale: nbits as f64 * base,
            m0: m,
            base_reads: reads,
            next: 0,
            counts,
        };
        if let Some(at) = self.entries.iter().position(|e| e.key == key) {
            self.entries[at] = entry;
            return at;
        }
        if self.entries.len() >= MAX_ENTRIES {
            self.entries.clear();
        }
        self.entries.push(entry);
        self.entries.len() - 1
    }
}

/// Inverse-CDF Poisson draw (one uniform), for means comfortably below
/// the exp(-λ) underflow region.
fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let u: f64 = rng.gen();
    let mut cumulative = (-lambda).exp();
    let mut term = cumulative;
    let mut k = 0usize;
    while u > cumulative {
        k += 1;
        term *= lambda / k as f64;
        cumulative += term;
        if term < 1e-300 {
            break;
        }
    }
    k
}

/// Poisson draw specialised for tiny means (disturb top-ups): one
/// uniform and a comparison in the overwhelmingly common zero case,
/// exact inverse-CDF in the rare remainder.
fn sample_topup<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let u: f64 = rng.gen();
    // 1 - λ ≤ exp(-λ): u at or below the cheap bound proves k = 0
    // without evaluating the exponential.
    if u <= 1.0 - lambda {
        return 0;
    }
    let mut cumulative = (-lambda).exp();
    let mut term = cumulative;
    let mut k = 0usize;
    while u > cumulative {
        k += 1;
        term *= lambda / k as f64;
        cumulative += term;
        if term < 1e-300 {
            break;
        }
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::CellDensity;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn native_plc() -> ProgramMode {
        ProgramMode::native(CellDensity::Plc)
    }

    #[test]
    fn out_of_envelope_regimes_decline() {
        let mut batcher = ErrorBatcher::default();
        let mut rng = StdRng::seed_from_u64(1);
        let mode = native_plc();
        // p too large.
        assert_eq!(batcher.sample(&mut rng, mode, 0, 0.3, 1.0, 1, 17408), None);
        // lambda too large.
        assert_eq!(batcher.sample(&mut rng, mode, 0, 1e-3, 1.0, 1, 17408), None);
        // Zero probability.
        assert_eq!(batcher.sample(&mut rng, mode, 0, 0.0, 1.0, 1, 17408), None);
    }

    #[test]
    fn batched_mean_matches_poisson_mean() {
        let mut batcher = ErrorBatcher::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mode = native_plc();
        let base = 2e-5;
        let nbits = 17408;
        let trials = 40_000usize;
        let mut total = 0usize;
        for i in 0..trials {
            let reads = i as u64 + 1;
            let m = 1.0 + reads as f64 * 1e-8;
            total += batcher
                .sample(&mut rng, mode, 3, base, m, reads, nbits)
                .expect("in envelope");
        }
        let mean = total as f64 / trials as f64;
        let expect = nbits as f64 * base; // disturb drift is negligible here
        assert!(
            (mean / expect - 1.0).abs() < 0.05,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn epoch_change_and_read_reset_invalidate() {
        let mut batcher = ErrorBatcher::default();
        let mut rng = StdRng::seed_from_u64(3);
        let mode = native_plc();
        batcher
            .sample(&mut rng, mode, 1, 1e-5, 1.0, 100, 17408)
            .unwrap();
        assert_eq!(batcher.entries.len(), 1);
        // New pec epoch clears the batches.
        batcher
            .sample(&mut rng, mode, 2, 1e-5, 1.0, 1, 17408)
            .unwrap();
        assert_eq!(batcher.entries.len(), 1);
        assert_eq!(batcher.entries[0].base_reads, 1);
        // A read-count reset (program) forces a redraw for the key.
        let before = batcher.entries[0].next;
        assert!(before > 0);
        batcher
            .sample(&mut rng, mode, 2, 1e-5, 1.0, 0, 17408)
            .unwrap();
        assert_eq!(batcher.entries[0].base_reads, 0);
        assert_eq!(batcher.entries[0].next, 1);
    }

    #[test]
    fn exhausted_batches_redraw() {
        let mut batcher = ErrorBatcher::default();
        let mut rng = StdRng::seed_from_u64(4);
        let mode = native_plc();
        for i in 0..(BATCH_SLOTS * 3) {
            batcher
                .sample(&mut rng, mode, 1, 1e-5, 1.0, i as u64, 17408)
                .unwrap();
        }
        assert_eq!(batcher.entries.len(), 1);
        assert_eq!(batcher.entries[0].next, BATCH_SLOTS);
    }

    #[test]
    fn capacity_reset_keeps_sampling() {
        let mut batcher = ErrorBatcher::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mode = native_plc();
        for i in 0..(MAX_ENTRIES * 2) {
            let base = 1e-6 * (i + 1) as f64;
            batcher
                .sample(&mut rng, mode, 1, base, 1.0, 1, 17408)
                .unwrap();
        }
        assert!(batcher.entries.len() <= MAX_ENTRIES);
    }

    #[test]
    fn topup_distribution_is_poisson() {
        let mut rng = StdRng::seed_from_u64(6);
        let lambda = 0.05;
        let trials = 200_000;
        let total: usize = (0..trials).map(|_| sample_topup(&mut rng, lambda)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean / lambda - 1.0).abs() < 0.05, "mean {mean}");
        assert_eq!(sample_topup(&mut rng, 0.0), 0);
    }

    #[test]
    fn poisson_draw_tracks_mean_across_regimes() {
        let mut rng = StdRng::seed_from_u64(7);
        for &lambda in &[0.1, 1.0, 8.0, 64.0] {
            let trials = 20_000;
            let total: usize = (0..trials).map(|_| sample_poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / trials as f64;
            assert!(
                (mean / lambda - 1.0).abs() < 0.08,
                "lambda {lambda}: mean {mean}"
            );
        }
    }
}
