//! Deterministic fault injection.
//!
//! A [`FaultInjector`] attaches to a [`FlashDevice`](crate::FlashDevice)
//! and fires scheduled faults — failing the Nth program or erase,
//! injecting transient read errors, or cutting power mid-program so the
//! in-flight page is left torn. Scheduling is by the injector's own
//! operation counter or by simulated day; randomness comes from a seeded
//! RNG, never a wall clock, so every fault sequence replays exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The device operation a fault hook is consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A page program.
    Program,
    /// A block erase.
    Erase,
    /// A page read.
    Read,
}

/// What a fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The next eligible program fails and retires its block, exactly
    /// like a deep-wear program failure.
    FailProgram,
    /// The next eligible erase fails and retires its block.
    FailErase,
    /// The next eligible read sees this many extra transient bit flips
    /// on top of whatever the error model injects.
    ReadNoise {
        /// Extra bit flips to inject.
        bits: u32,
    },
    /// Power is cut at the next operation. A program in flight leaves a
    /// torn page (stored with a bad OOB CRC); every later operation
    /// returns [`FlashError::PowerLoss`](crate::FlashError::PowerLoss)
    /// until [`FlashDevice::power_cycle`](crate::FlashDevice::power_cycle).
    PowerCut,
}

impl FaultKind {
    fn applies_to(self, op: FaultOp) -> bool {
        match self {
            FaultKind::FailProgram => op == FaultOp::Program,
            FaultKind::FailErase => op == FaultOp::Erase,
            FaultKind::ReadNoise { .. } => op == FaultOp::Read,
            FaultKind::PowerCut => true,
        }
    }
}

/// When a fault becomes due. A due fault fires at the first subsequent
/// operation its kind applies to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAt {
    /// Due once the injector has observed this many operations
    /// (programs + erases + reads, counted from attachment).
    OpCount(u64),
    /// Due once the simulated clock reaches this day.
    Day(f64),
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// What happens.
    pub kind: FaultKind,
    /// When it becomes due.
    pub at: FaultAt,
}

/// A fault that fired, for post-mortem inspection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRecord {
    /// The fault that fired.
    pub kind: FaultKind,
    /// Injector operation count at the moment it fired.
    pub op_count: u64,
    /// Simulated day it fired.
    pub day: f64,
}

/// Deterministic fault scheduler for a flash device.
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    plans: Vec<FaultPlan>,
    op_count: u64,
    fired: Vec<FaultRecord>,
}

impl FaultInjector {
    /// A new injector with no faults armed. The seed drives only the
    /// fault payloads (which bits a `ReadNoise` flips, how a torn page's
    /// contents are scrambled); scheduling is exact.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(seed),
            plans: Vec::new(),
            op_count: 0,
            fired: Vec::new(),
        }
    }

    /// Arms a fault. Multiple faults may be armed; each fires once, at
    /// the first applicable operation after it becomes due.
    pub fn arm(&mut self, plan: FaultPlan) {
        self.plans.push(plan);
    }

    /// Operations observed since the injector was attached.
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// Faults still armed.
    pub fn pending(&self) -> &[FaultPlan] {
        &self.plans
    }

    /// Faults that have fired, in order.
    pub fn fired(&self) -> &[FaultRecord] {
        &self.fired
    }

    /// Called by the device before each operation; returns the fault to
    /// apply, if one is due.
    pub(crate) fn on_op(&mut self, op: FaultOp, day: f64) -> Option<FaultKind> {
        self.op_count += 1;
        let due = |plan: &FaultPlan| match plan.at {
            FaultAt::OpCount(n) => self.op_count >= n,
            FaultAt::Day(d) => day >= d,
        };
        let index = self
            .plans
            .iter()
            .position(|plan| plan.kind.applies_to(op) && due(plan))?;
        let plan = self.plans.swap_remove(index);
        self.fired.push(FaultRecord {
            kind: plan.kind,
            op_count: self.op_count,
            day,
        });
        Some(plan.kind)
    }

    /// Flips `bits` random bit positions in `data` (transient read
    /// noise), returning the flipped positions.
    pub(crate) fn flip_bits(&mut self, data: &mut [u8], bits: u32) -> Vec<usize> {
        let nbits = data.len() * 8;
        let mut positions = Vec::with_capacity(bits as usize);
        for _ in 0..bits {
            let bit = self.rng.gen_range(0..nbits);
            if let Some(byte) = data.get_mut(bit / 8) {
                *byte ^= 1 << (bit % 8);
            }
            positions.push(bit);
        }
        positions
    }

    /// Scrambles the tail of a torn page's payload: a program cut
    /// partway through leaves later cells only partially charged.
    pub(crate) fn tear_data(&mut self, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let cut = self.rng.gen_range(0..data.len());
        for byte in data.iter_mut().skip(cut) {
            *byte ^= self.rng.gen::<u8>();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_fires_once_at_op_count() {
        let mut inj = FaultInjector::new(1);
        inj.arm(FaultPlan {
            kind: FaultKind::PowerCut,
            at: FaultAt::OpCount(3),
        });
        assert_eq!(inj.on_op(FaultOp::Program, 0.0), None);
        assert_eq!(inj.on_op(FaultOp::Read, 0.0), None);
        assert_eq!(inj.on_op(FaultOp::Program, 0.0), Some(FaultKind::PowerCut));
        assert_eq!(inj.on_op(FaultOp::Program, 0.0), None);
        assert_eq!(inj.fired().len(), 1);
        assert_eq!(inj.fired()[0].op_count, 3);
    }

    #[test]
    fn fault_waits_for_applicable_op() {
        let mut inj = FaultInjector::new(1);
        inj.arm(FaultPlan {
            kind: FaultKind::FailErase,
            at: FaultAt::OpCount(1),
        });
        // Due immediately, but only an erase can trigger it.
        assert_eq!(inj.on_op(FaultOp::Program, 0.0), None);
        assert_eq!(inj.on_op(FaultOp::Read, 0.0), None);
        assert_eq!(inj.on_op(FaultOp::Erase, 0.0), Some(FaultKind::FailErase));
    }

    #[test]
    fn day_scheduled_fault_fires_when_clock_reaches() {
        let mut inj = FaultInjector::new(1);
        inj.arm(FaultPlan {
            kind: FaultKind::PowerCut,
            at: FaultAt::Day(5.0),
        });
        assert_eq!(inj.on_op(FaultOp::Program, 4.9), None);
        assert_eq!(inj.on_op(FaultOp::Program, 5.0), Some(FaultKind::PowerCut));
    }

    #[test]
    fn flip_bits_is_deterministic_per_seed() {
        let mut a = FaultInjector::new(9);
        let mut b = FaultInjector::new(9);
        let mut buf_a = vec![0u8; 64];
        let mut buf_b = vec![0u8; 64];
        assert_eq!(a.flip_bits(&mut buf_a, 8), b.flip_bits(&mut buf_b, 8));
        assert_eq!(buf_a, buf_b);
    }
}
