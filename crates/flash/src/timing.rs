//! Operation latency model.
//!
//! Denser cells are slower: programming uses incremental step-pulse
//! programming (ISPP) whose step count grows with the number of voltage
//! levels, and reads need more sense operations to resolve more levels
//! (§2.1, §4.5). Pseudo-modes therefore also regain *speed*: a PLC cell
//! programmed as pseudo-QLC takes roughly QLC time.
//!
//! Latencies are returned in microseconds. They are deterministic
//! functions of the programmed density so simulations are reproducible;
//! queueing/contention effects are the FTL's concern, not the chip's.

use crate::density::ProgramMode;
use serde::{Deserialize, Serialize};

/// Latency of one flash array operation, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Array read time (tR).
    pub read_us: f64,
    /// Page program time (tPROG).
    pub program_us: f64,
    /// Block erase time (tBERS).
    pub erase_us: f64,
}

/// Parameterised timing model.
///
/// Defaults are calibrated against public datasheet ballparks: SLC reads
/// ~30 µs / programs ~200 µs, TLC ~60/800 µs, QLC ~100/1600 µs, with PLC
/// projected at ~180/3200 µs (nearline-class, §4.5).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimingModel {
    /// Fixed read overhead (sense amp setup), µs.
    pub read_base_us: f64,
    /// Additional read time per voltage level, µs.
    pub read_per_level_us: f64,
    /// Program time per voltage level (ISPP steps), µs.
    pub program_per_level_us: f64,
    /// Fixed erase time, µs.
    pub erase_base_us: f64,
    /// Additional erase time per *physical* level, µs.
    pub erase_per_level_us: f64,
    /// Channel transfer bandwidth for page data, MB/s.
    pub channel_mb_s: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            read_base_us: 20.0,
            read_per_level_us: 5.0,
            program_per_level_us: 100.0,
            erase_base_us: 2000.0,
            erase_per_level_us: 60.0,
            channel_mb_s: 800.0,
        }
    }
}

impl TimingModel {
    /// Array latencies for a block programmed in `mode`.
    ///
    /// Read and program scale with the *logical* level count (that is what
    /// the sense/ISPP machinery has to resolve); erase scales with the
    /// *physical* level count (the whole window must be discharged).
    pub fn latencies(&self, mode: ProgramMode) -> OpLatencies {
        let logical_levels = mode.logical.levels() as f64;
        let physical_levels = mode.physical.levels() as f64;
        OpLatencies {
            read_us: self.read_base_us + self.read_per_level_us * logical_levels,
            program_us: self.program_per_level_us * logical_levels,
            erase_us: self.erase_base_us + self.erase_per_level_us * physical_levels,
        }
    }

    /// Time to move `bytes` over the channel, in µs.
    pub fn transfer_us(&self, bytes: usize) -> f64 {
        bytes as f64 / self.channel_mb_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::CellDensity;

    #[test]
    fn denser_modes_are_slower() {
        let t = TimingModel::default();
        let mut prev_read = 0.0;
        let mut prev_prog = 0.0;
        for d in CellDensity::ALL {
            let l = t.latencies(ProgramMode::native(d));
            assert!(l.read_us > prev_read, "{d} read");
            assert!(l.program_us > prev_prog, "{d} program");
            prev_read = l.read_us;
            prev_prog = l.program_us;
        }
    }

    #[test]
    fn datasheet_ballparks() {
        let t = TimingModel::default();
        let tlc = t.latencies(ProgramMode::native(CellDensity::Tlc));
        assert!(
            (40.0..=100.0).contains(&tlc.read_us),
            "TLC tR {}",
            tlc.read_us
        );
        assert!(
            (500.0..=1200.0).contains(&tlc.program_us),
            "TLC tPROG {}",
            tlc.program_us
        );
        let plc = t.latencies(ProgramMode::native(CellDensity::Plc));
        assert!(plc.program_us >= 2.0 * tlc.program_us, "PLC much slower");
    }

    #[test]
    fn pseudo_mode_regains_speed() {
        let t = TimingModel::default();
        let native = t.latencies(ProgramMode::native(CellDensity::Plc));
        let pqlc = t.latencies(ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc));
        let qlc = t.latencies(ProgramMode::native(CellDensity::Qlc));
        assert!(pqlc.program_us < native.program_us);
        assert!((pqlc.program_us - qlc.program_us).abs() < 1e-9);
        // Erase still pays for the physical window.
        assert!(pqlc.erase_us > qlc.erase_us);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let t = TimingModel::default();
        assert!((t.transfer_us(8192) - 2.0 * t.transfer_us(4096)).abs() < 1e-9);
        // 4 KiB at 800 MB/s is ~5 µs.
        assert!((t.transfer_us(4096) - 5.12).abs() < 0.2);
    }
}
