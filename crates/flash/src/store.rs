//! Page-store backends: struct-of-arrays (production) and the legacy
//! per-page map (shadow-model oracle).
//!
//! The simulator's hot loops touch page state on every program, read and
//! erase. The dense backend keeps that state as struct-of-arrays —
//! packed `programmed`/`torn` bitmaps, contiguous per-page
//! day/lpn/seq/stream/kind/crc arrays, and pooled per-block data buffers
//! indexed by slot — so the common operations are bit tests and flat
//! array indexing instead of hash probes and per-page heap boxes. The
//! legacy `HashMap` backend is retained verbatim as the oracle for the
//! shadow-model proptests: both backends must produce bit-identical
//! device behaviour for identical operation sequences.

use crate::geometry::Geometry;
use crate::oob::OobMeta;
use crate::oob::PageKind;
use std::collections::HashMap;

/// A read-only view of one programmed page, borrowed from the store.
#[derive(Debug)]
pub(crate) struct PageView<'a> {
    /// Stored contents (data + spare).
    pub data: &'a [u8],
    /// Simulated day the page was programmed.
    pub programmed_day: f64,
    /// Sidecar OOB metadata, if programmed with any.
    pub oob: Option<OobMeta>,
    /// Program interrupted by a power cut.
    pub torn: bool,
}

/// Stored contents of a programmed page (legacy backend).
#[derive(Debug, Clone)]
struct PageData {
    data: Box<[u8]>,
    programmed_day: f64,
    oob: Option<OobMeta>,
    torn: bool,
}

/// Legacy per-page map backend: one heap allocation per programmed page,
/// keyed by flat page index. Kept as the shadow-model oracle.
#[derive(Debug, Default)]
pub(crate) struct LegacyStore {
    pages_per_block: u64,
    pages: HashMap<u64, PageData>,
}

impl LegacyStore {
    fn new(geometry: &Geometry) -> Self {
        LegacyStore {
            pages_per_block: geometry.pages_per_block as u64,
            pages: HashMap::new(),
        }
    }

    fn index(&self, block: u64, page: u32) -> u64 {
        block * self.pages_per_block + page as u64
    }
}

/// Struct-of-arrays backend.
///
/// Per-page metadata lives in flat arrays indexed by
/// `block * pages_per_block + page`; page membership is a packed bitmap;
/// page contents live in per-block buffers handed out from a reuse pool
/// (a fresh simulated device would otherwise eagerly commit hundreds of
/// megabytes for the larger geometries).
#[derive(Debug)]
pub(crate) struct DenseStore {
    pages_per_block: usize,
    /// Full page size (data + spare), bytes.
    page_bytes: usize,
    /// Bitmap words per block.
    bitmap_words: usize,
    /// Packed per-block `programmed` bitmaps, `bitmap_words` per block.
    programmed: Vec<u64>,
    /// Packed per-block `torn` bitmaps (subset of `programmed`).
    torn: Vec<u64>,
    /// Packed per-page "has OOB metadata" bitmaps.
    has_oob: Vec<u64>,
    /// Per-page program day.
    day: Vec<f64>,
    /// Per-page OOB fields, decomposed struct-of-arrays.
    lpn: Vec<u64>,
    seq: Vec<u64>,
    stream: Vec<u8>,
    /// 0 = data, 1 = checkpoint (mirrors [`PageKind`]).
    kind: Vec<u8>,
    crc: Vec<u32>,
    /// Per-block data-buffer slot into `pool`, `u32::MAX` when the block
    /// holds no data buffer.
    slot: Vec<u32>,
    /// Block-sized data buffers (`pages_per_block * page_bytes` each).
    pool: Vec<Box<[u8]>>,
    /// Slots in `pool` not currently attached to a block.
    free_slots: Vec<u32>,
}

/// Sentinel for "block has no pooled data buffer".
const NO_SLOT: u32 = u32::MAX;

impl DenseStore {
    // sos-lint: allow(panic-path, "all vectors are allocated to the geometry's page count before use")
    fn new(geometry: &Geometry) -> Self {
        let blocks = geometry.total_blocks() as usize;
        let pages_per_block = geometry.pages_per_block as usize;
        let total_pages = blocks * pages_per_block;
        let bitmap_words = pages_per_block.div_ceil(64);
        DenseStore {
            pages_per_block,
            page_bytes: (geometry.page_bytes + geometry.spare_bytes) as usize,
            bitmap_words,
            programmed: vec![0; blocks * bitmap_words],
            torn: vec![0; blocks * bitmap_words],
            has_oob: vec![0; blocks * bitmap_words],
            day: vec![0.0; total_pages],
            lpn: vec![0; total_pages],
            seq: vec![0; total_pages],
            stream: vec![0; total_pages],
            kind: vec![0; total_pages],
            crc: vec![0; total_pages],
            slot: vec![NO_SLOT; blocks],
            pool: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    #[inline]
    fn page_index(&self, block: u64, page: u32) -> usize {
        block as usize * self.pages_per_block + page as usize
    }

    #[inline]
    // sos-lint: allow(panic-path, "bitmaps are allocated to the geometry's block count; the device validates addresses first")
    fn bit(&self, map: &[u64], block: u64, page: u32) -> bool {
        let word = block as usize * self.bitmap_words + page as usize / 64;
        map[word] & (1u64 << (page % 64)) != 0
    }

    /// Ensures the block has a data buffer, returning its pool slot.
    // sos-lint: allow(panic-path, "the slot vector is allocated to the block count; pool slots are recorded at push")
    fn ensure_slot(&mut self, block: u64) -> usize {
        let current = self.slot[block as usize];
        if current != NO_SLOT {
            return current as usize;
        }
        let slot = match self.free_slots.pop() {
            Some(free) => free,
            None => {
                let buffer = vec![0u8; self.pages_per_block * self.page_bytes].into_boxed_slice();
                self.pool.push(buffer);
                // The pool never outgrows the block count, which the
                // geometry bounds well below u32::MAX.
                u32::try_from(self.pool.len() - 1).unwrap_or(NO_SLOT)
            }
        };
        self.slot[block as usize] = slot;
        slot as usize
    }
}

/// The device's page store: dense struct-of-arrays in production, the
/// legacy per-page map when constructed as a shadow-model oracle.
// One instance per device, so the Dense/Legacy size gap costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum PageStore {
    /// Struct-of-arrays backend (production).
    Dense(DenseStore),
    /// Per-page `HashMap` backend (shadow-model oracle).
    Legacy(LegacyStore),
}

impl PageStore {
    pub(crate) fn dense(geometry: &Geometry) -> Self {
        PageStore::Dense(DenseStore::new(geometry))
    }

    pub(crate) fn legacy(geometry: &Geometry) -> Self {
        PageStore::Legacy(LegacyStore::new(geometry))
    }

    /// Records a page program: contents, program day, OOB sidecar and
    /// torn flag, atomically.
    // sos-lint: allow(panic-path, "the device validates the address against the geometry before touching the store")
    pub(crate) fn program(
        &mut self,
        block: u64,
        page: u32,
        data: &[u8],
        day: f64,
        oob: Option<OobMeta>,
        torn: bool,
    ) {
        match self {
            PageStore::Legacy(store) => {
                let index = store.index(block, page);
                store.pages.insert(
                    index,
                    PageData {
                        data: data.into(),
                        programmed_day: day,
                        oob,
                        torn,
                    },
                );
            }
            PageStore::Dense(store) => {
                let slot = store.ensure_slot(block);
                let offset = page as usize * store.page_bytes;
                store.pool[slot][offset..offset + data.len()].copy_from_slice(data);
                let index = store.page_index(block, page);
                store.day[index] = day;
                let word = block as usize * store.bitmap_words + page as usize / 64;
                let mask = 1u64 << (page % 64);
                store.programmed[word] |= mask;
                if torn {
                    store.torn[word] |= mask;
                } else {
                    store.torn[word] &= !mask;
                }
                match oob {
                    Some(meta) => {
                        store.has_oob[word] |= mask;
                        store.lpn[index] = meta.lpn;
                        store.seq[index] = meta.seq;
                        store.stream[index] = meta.stream;
                        store.kind[index] = match meta.kind {
                            PageKind::Data => 0,
                            PageKind::Checkpoint => 1,
                        };
                        store.crc[index] = meta.crc;
                    }
                    None => {
                        store.has_oob[word] &= !mask;
                    }
                }
            }
        }
    }

    /// A view of a programmed page, or `None` when the page holds no
    /// data since the last erase.
    // sos-lint: allow(panic-path, "the device validates the address against the geometry before touching the store")
    pub(crate) fn view(&self, block: u64, page: u32) -> Option<PageView<'_>> {
        match self {
            PageStore::Legacy(store) => {
                let index = store.index(block, page);
                store.pages.get(&index).map(|p| PageView {
                    data: &p.data,
                    programmed_day: p.programmed_day,
                    oob: p.oob,
                    torn: p.torn,
                })
            }
            PageStore::Dense(store) => {
                if !store.bit(&store.programmed, block, page) {
                    return None;
                }
                let index = store.page_index(block, page);
                let slot = store.slot[block as usize] as usize;
                let offset = page as usize * store.page_bytes;
                let oob = store.bit(&store.has_oob, block, page).then(|| OobMeta {
                    lpn: store.lpn[index],
                    seq: store.seq[index],
                    stream: store.stream[index],
                    kind: if store.kind[index] == 0 {
                        PageKind::Data
                    } else {
                        PageKind::Checkpoint
                    },
                    crc: store.crc[index],
                });
                Some(PageView {
                    data: &store.pool[slot][offset..offset + store.page_bytes],
                    programmed_day: store.day[index],
                    oob,
                    torn: store.bit(&store.torn, block, page),
                })
            }
        }
    }

    /// Drops every page of a block (erase, erase failure, retirement),
    /// returning the block's data buffer to the pool.
    // sos-lint: allow(panic-path, "the device validates the address against the geometry before touching the store")
    pub(crate) fn clear_block(&mut self, block: u64) {
        match self {
            PageStore::Legacy(store) => {
                let base = block * store.pages_per_block;
                for page in 0..store.pages_per_block {
                    store.pages.remove(&(base + page));
                }
            }
            PageStore::Dense(store) => {
                let word = block as usize * store.bitmap_words;
                for w in 0..store.bitmap_words {
                    store.programmed[word + w] = 0;
                    store.torn[word + w] = 0;
                    store.has_oob[word + w] = 0;
                }
                let slot = store.slot[block as usize];
                if slot != NO_SLOT {
                    store.slot[block as usize] = NO_SLOT;
                    store.free_slots.push(slot);
                }
            }
        }
    }

    /// Page indices of a block currently holding programmed data, in
    /// ascending order.
    pub(crate) fn programmed_pages(&self, block: u64, pages_per_block: u32) -> Vec<u32> {
        (0..pages_per_block)
            .filter(|&p| self.view(block, p).is_some())
            .collect()
    }

    /// Page indices of a block holding torn pages, in ascending order.
    pub(crate) fn torn_pages(&self, block: u64, pages_per_block: u32) -> Vec<u32> {
        (0..pages_per_block)
            .filter(|&p| self.view(block, p).is_some_and(|v| v.torn))
            .collect()
    }

    /// The earliest program day among a block's resident pages.
    pub(crate) fn oldest_day(&self, block: u64, pages_per_block: u32) -> Option<f64> {
        let oldest = (0..pages_per_block)
            .filter_map(|p| self.view(block, p).map(|v| v.programmed_day))
            .fold(f64::INFINITY, f64::min);
        oldest.is_finite().then_some(oldest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn geo() -> Geometry {
        Geometry {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 4,
            pages_per_block: 8,
            page_bytes: 32,
            spare_bytes: 4,
        }
    }

    fn stores() -> [PageStore; 2] {
        [PageStore::dense(&geo()), PageStore::legacy(&geo())]
    }

    #[test]
    fn program_view_roundtrip_matches_across_backends() {
        for mut store in stores() {
            let data = vec![0xABu8; 36];
            let meta = OobMeta::data(7, 3, 1);
            store.program(2, 5, &data, 1.5, Some(meta), false);
            let view = store.view(2, 5).expect("programmed page");
            assert_eq!(view.data, &data[..]);
            assert_eq!(view.programmed_day, 1.5);
            assert_eq!(view.oob, Some(meta));
            assert!(!view.torn);
            assert!(store.view(2, 4).is_none());
            assert!(store.view(1, 5).is_none());
        }
    }

    #[test]
    fn torn_and_oob_less_pages_roundtrip() {
        for mut store in stores() {
            let data = vec![1u8; 36];
            store.program(0, 0, &data, 0.0, None, true);
            let view = store.view(0, 0).unwrap();
            assert!(view.torn);
            assert_eq!(view.oob, None);
            // Reprogramming the slot clears the torn flag.
            store.program(0, 0, &data, 0.0, Some(OobMeta::data(1, 1, 0)), false);
            assert!(!store.view(0, 0).unwrap().torn);
        }
    }

    #[test]
    fn torn_oob_crc_survives_the_store() {
        // The corrupted CRC of a torn OOB record must roundtrip verbatim.
        for mut store in stores() {
            let data = vec![2u8; 36];
            let torn_meta = OobMeta::data(9, 9, 2).torn();
            store.program(1, 1, &data, 0.25, Some(torn_meta), true);
            let view = store.view(1, 1).unwrap();
            assert_eq!(view.oob, Some(torn_meta));
            assert!(!view.oob.unwrap().is_valid());
        }
    }

    #[test]
    fn clear_block_drops_only_that_block() {
        for mut store in stores() {
            let data = vec![3u8; 36];
            store.program(0, 0, &data, 0.0, None, false);
            store.program(1, 0, &data, 0.0, None, false);
            store.clear_block(0);
            assert!(store.view(0, 0).is_none());
            assert!(store.view(1, 0).is_some());
        }
    }

    #[test]
    fn dense_buffer_pool_reuses_freed_slots() {
        let mut store = PageStore::dense(&geo());
        let data = vec![4u8; 36];
        store.program(0, 0, &data, 0.0, None, false);
        store.program(1, 0, &data, 0.0, None, false);
        store.clear_block(0);
        store.program(2, 0, &data, 0.0, None, false);
        if let PageStore::Dense(dense) = &store {
            assert_eq!(dense.pool.len(), 2, "freed slot must be reused");
        }
        // Reused buffers must not leak stale contents into fresh pages.
        let fresh = vec![5u8; 36];
        store.program(2, 1, &fresh, 0.0, None, false);
        assert_eq!(store.view(2, 1).unwrap().data, &fresh[..]);
        assert!(store.view(2, 2).is_none());
    }

    #[test]
    fn scan_helpers_agree_across_backends() {
        for mut store in stores() {
            let data = vec![6u8; 36];
            store.program(3, 0, &data, 2.0, None, false);
            store.program(3, 1, &data, 1.0, None, true);
            store.program(3, 2, &data, 3.0, None, false);
            assert_eq!(store.programmed_pages(3, 8), vec![0, 1, 2]);
            assert_eq!(store.torn_pages(3, 8), vec![1]);
            assert_eq!(store.oldest_day(3, 8), Some(1.0));
            assert_eq!(store.oldest_day(2, 8), None);
        }
    }
}
