//! # sos-flash — NAND flash device simulator
//!
//! A behavioural simulator of 3D NAND flash used as the hardware substrate
//! for the SOS (Sustainability-Oriented Storage) reproduction of
//! *"Degrading Data to Save the Planet"* (HotOS '23).
//!
//! The simulator models:
//!
//! * **Cell densities** from SLC through PLC, including *pseudo* modes in
//!   which a physically dense cell (e.g. PLC) is programmed with fewer
//!   levels (e.g. pseudo-QLC) trading capacity for margin and endurance
//!   ([`density`]).
//! * **Device geometry** — channels, dies, planes, blocks and pages, with
//!   NAND programming constraints (erase-before-program, in-order page
//!   programming within a block) ([`geometry`], [`device`]).
//! * **A voltage-window error model** — threshold-voltage distributions
//!   widen with program/erase wear, retention time and read disturb; the
//!   raw bit error rate (RBER) is derived from the overlap of adjacent
//!   level distributions via a Q-function, so pseudo-modes and density
//!   effects fall out of the physics rather than being hard-coded
//!   ([`cell`], [`errors`]).
//! * **Operation timing** — per-density read/program/erase latencies
//!   ([`timing`]).
//!
//! The entry point is [`device::FlashDevice`]; presets for realistic
//! devices live in [`config`].

pub(crate) mod batch;
pub mod cell;
pub mod config;
pub mod density;
pub mod device;
pub mod errors;
pub mod fault;
pub mod geometry;
pub mod oob;
pub mod rbercache;
pub(crate) mod store;
pub mod timing;

pub use cell::CellState;
pub use config::DeviceConfig;
pub use density::{CellDensity, ProgramMode};
pub use device::{BlockSnapshot, ErrorSampling, FlashDevice, FlashError, ReadOutcome};
pub use errors::ErrorModel;
pub use fault::{FaultAt, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRecord};
pub use geometry::{BlockAddr, Geometry, PageAddr};
pub use oob::{OobMeta, PageKind};
pub use rbercache::RberCache;
pub use timing::TimingModel;
