//! Cell densities and programming modes.
//!
//! The paper's core lever is the *density ladder*: moving personal storage
//! from TLC to QLC/PLC stores more bits in the same silicon (§2.2, §4.1),
//! at the cost of endurance and raw reliability. This module captures the
//! ladder and the *pseudo-mode* trick (§4.2–4.3) where a physically dense
//! cell is programmed with fewer voltage levels to regain margin.

use serde::{Deserialize, Serialize};

/// Number of bits stored per flash cell.
///
/// The variants follow the industry ladder described in §2.2 of the paper:
/// single-level (SLC) through penta-level (PLC) cells. Each additional bit
/// doubles the number of voltage levels that must fit inside the same
/// threshold-voltage window, which shrinks inter-level margins and hence
/// endurance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CellDensity {
    /// Single-level cell: 1 bit, 2 levels. Legacy/industrial.
    Slc,
    /// Multi-level cell: 2 bits, 4 levels.
    Mlc,
    /// Triple-level cell: 3 bits, 8 levels. The mainstream personal-device
    /// density the paper proposes to move away from.
    Tlc,
    /// Quad-level cell: 4 bits, 16 levels. Nearline / value SSDs.
    Qlc,
    /// Penta-level cell: 5 bits, 32 levels. Emerging nearline density and
    /// the SPARE-partition medium in SOS.
    Plc,
}

impl CellDensity {
    /// All densities, from least to most dense.
    pub const ALL: [CellDensity; 5] = [
        CellDensity::Slc,
        CellDensity::Mlc,
        CellDensity::Tlc,
        CellDensity::Qlc,
        CellDensity::Plc,
    ];

    /// Bits stored per cell.
    pub const fn bits_per_cell(self) -> u32 {
        match self {
            CellDensity::Slc => 1,
            CellDensity::Mlc => 2,
            CellDensity::Tlc => 3,
            CellDensity::Qlc => 4,
            CellDensity::Plc => 5,
        }
    }

    /// Number of distinguishable voltage levels (`2^bits`).
    pub const fn levels(self) -> u32 {
        1 << self.bits_per_cell()
    }

    /// Rated native program/erase cycle (PEC) endurance.
    ///
    /// Values follow the figures cited in the paper: ~100K PEC for
    /// early-generation SLC down to ~1K PEC for QLC (§2.2, ref. 22), with
    /// PLC endurance reduced by a further factor of 2 vs QLC and 6 vs TLC
    /// (§4.1).
    pub const fn rated_endurance(self) -> u32 {
        match self {
            CellDensity::Slc => 100_000,
            CellDensity::Mlc => 10_000,
            CellDensity::Tlc => 3_000,
            CellDensity::Qlc => 1_000,
            CellDensity::Plc => 500,
        }
    }

    /// Human-readable name ("SLC", "TLC", ...).
    pub const fn name(self) -> &'static str {
        match self {
            CellDensity::Slc => "SLC",
            CellDensity::Mlc => "MLC",
            CellDensity::Tlc => "TLC",
            CellDensity::Qlc => "QLC",
            CellDensity::Plc => "PLC",
        }
    }

    /// Density gain of `self` relative to `other`, as a fraction.
    ///
    /// E.g. `Plc.density_gain_over(Tlc)` is `5/3 - 1 ≈ 0.666`, the paper's
    /// "66% improvement" (§4.1).
    pub fn density_gain_over(self, other: CellDensity) -> f64 {
        self.bits_per_cell() as f64 / other.bits_per_cell() as f64 - 1.0
    }

    /// Cells required to store one bit (inverse density), normalised so
    /// that TLC = 1.0. Used by the carbon model: silicon area — and hence
    /// embodied carbon — is proportional to cell count for a fixed
    /// process/layer count.
    pub fn relative_cell_count(self) -> f64 {
        CellDensity::Tlc.bits_per_cell() as f64 / self.bits_per_cell() as f64
    }
}

impl std::fmt::Display for CellDensity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a block of physical cells is programmed.
///
/// NAND can program a dense cell with fewer levels than it physically
/// supports ("pseudo" modes, e.g. pSLC caches in TLC drives, or the
/// pseudo-QLC SYS partition and pseudo-TLC resuscitation in SOS §4.2–4.3).
/// The physical cell keeps its noise characteristics; the wider level
/// spacing buys margin, endurance and speed at the cost of capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProgramMode {
    /// The density of the physical cell (fixed at manufacture).
    pub physical: CellDensity,
    /// The density at which the cell is actually programmed
    /// (`logical <= physical`).
    pub logical: CellDensity,
}

impl ProgramMode {
    /// Native programming: logical density equals physical density.
    pub const fn native(density: CellDensity) -> Self {
        ProgramMode {
            physical: density,
            logical: density,
        }
    }

    /// Pseudo programming of a `physical` cell at a lower `logical`
    /// density.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is denser than `physical`; a cell cannot store
    /// more levels than it was manufactured for.
    pub fn pseudo(physical: CellDensity, logical: CellDensity) -> Self {
        // sos-lint: allow(panic-path, "documented contract: a cell cannot store more levels than manufactured; mode pairs are fixed at configuration time")
        assert!(
            logical.bits_per_cell() <= physical.bits_per_cell(),
            "pseudo mode cannot exceed physical density ({logical} > {physical})"
        );
        ProgramMode { physical, logical }
    }

    /// Whether this is a reduced-density (pseudo) mode.
    pub fn is_pseudo(self) -> bool {
        self.logical != self.physical
    }

    /// Bits per cell actually stored.
    pub const fn bits_per_cell(self) -> u32 {
        self.logical.bits_per_cell()
    }

    /// Effective endurance of the mode in program/erase cycles.
    ///
    /// Programming with fewer levels widens inter-level margins, which
    /// tolerates far more wear-induced distribution widening before read
    /// errors exceed correction budgets. We model the boost as a function
    /// of the margin ratio: halving the level count roughly doubles the
    /// spacing, and empirically (pSLC-in-TLC products, FlexFS-style
    /// reuse) each dropped bit multiplies endurance by ~3-4x. We use the
    /// margin-ratio squared, which lands in that range.
    pub fn effective_endurance(self) -> u32 {
        let base = self.physical.rated_endurance() as f64;
        let margin_ratio = (self.physical.levels() - 1) as f64 / (self.logical.levels() - 1) as f64;
        // sos-lint: allow(no-lossy-cast, "f64→u32 saturating cast of a bounded endurance figure")
        (base * margin_ratio * margin_ratio).round() as u32
    }

    /// Capacity of a block in this mode relative to native programming,
    /// in `(0, 1]`.
    pub fn capacity_fraction(self) -> f64 {
        self.logical.bits_per_cell() as f64 / self.physical.bits_per_cell() as f64
    }
}

impl std::fmt::Display for ProgramMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_pseudo() {
            write!(f, "pseudo-{} (in {})", self.logical, self.physical)
        } else {
            write!(f, "{}", self.physical)
        }
    }
}

/// The paper's headline split-device arithmetic (§4.2).
///
/// Given a device whose physical cells are split between a PLC SPARE
/// partition and a pseudo-QLC SYS partition (fractions by cell count),
/// returns the average bits per cell. With a 50/50 split this is
/// `(5 + 4) / 2 = 4.5` bits/cell — a 50% density gain over TLC and 12.5%
/// over QLC for the same cell count (the paper rounds the latter to its
/// "10% capacity gain over QLC" claim, which compares capacity at equal
/// material).
pub fn split_device_bits_per_cell(
    spare_fraction: f64,
    spare: ProgramMode,
    sys: ProgramMode,
) -> f64 {
    assert!((0.0..=1.0).contains(&spare_fraction));
    spare_fraction * spare.bits_per_cell() as f64
        + (1.0 - spare_fraction) * sys.bits_per_cell() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_and_levels_follow_the_ladder() {
        assert_eq!(CellDensity::Slc.bits_per_cell(), 1);
        assert_eq!(CellDensity::Plc.bits_per_cell(), 5);
        assert_eq!(CellDensity::Tlc.levels(), 8);
        assert_eq!(CellDensity::Plc.levels(), 32);
    }

    #[test]
    fn endurance_decreases_with_density() {
        let mut prev = u32::MAX;
        for d in CellDensity::ALL {
            assert!(d.rated_endurance() < prev, "{d} endurance out of order");
            prev = d.rated_endurance();
        }
    }

    #[test]
    fn paper_density_gains() {
        // §4.1: "Improving TLC density by 33% (QLC) and 66% (PLC)".
        let qlc_gain = CellDensity::Qlc.density_gain_over(CellDensity::Tlc);
        let plc_gain = CellDensity::Plc.density_gain_over(CellDensity::Tlc);
        assert!((qlc_gain - 1.0 / 3.0).abs() < 1e-9);
        assert!((plc_gain - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_endurance_ratios() {
        // §4.1: PLC endurance ~6-10x below TLC and 2x below QLC.
        let tlc = CellDensity::Tlc.rated_endurance() as f64;
        let qlc = CellDensity::Qlc.rated_endurance() as f64;
        let plc = CellDensity::Plc.rated_endurance() as f64;
        let vs_tlc = tlc / plc;
        let vs_qlc = qlc / plc;
        assert!((6.0..=10.0).contains(&vs_tlc), "TLC/PLC ratio {vs_tlc}");
        assert!((1.5..=2.5).contains(&vs_qlc), "QLC/PLC ratio {vs_qlc}");
    }

    #[test]
    fn split_scheme_is_fifty_percent_denser_than_tlc() {
        // §4.2: 50/50 PLC + pseudo-QLC split => 50% gain over TLC.
        let spare = ProgramMode::native(CellDensity::Plc);
        let sys = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc);
        let avg = split_device_bits_per_cell(0.5, spare, sys);
        assert!((avg - 4.5).abs() < 1e-9);
        let gain_vs_tlc = avg / CellDensity::Tlc.bits_per_cell() as f64 - 1.0;
        assert!((gain_vs_tlc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pseudo_mode_boosts_endurance() {
        let pqlc = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc);
        let ptlc = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Tlc);
        let native = ProgramMode::native(CellDensity::Plc);
        assert!(pqlc.effective_endurance() > native.effective_endurance());
        assert!(ptlc.effective_endurance() > pqlc.effective_endurance());
        // Margin ratio 31/15 squared is ~4.27x for pseudo-QLC in PLC.
        assert!(pqlc.effective_endurance() >= 2 * native.effective_endurance());
    }

    #[test]
    fn pseudo_capacity_fraction() {
        let pqlc = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc);
        assert!((pqlc.capacity_fraction() - 0.8).abs() < 1e-9);
        assert!((ProgramMode::native(CellDensity::Tlc).capacity_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pseudo mode cannot exceed")]
    fn pseudo_denser_than_physical_panics() {
        let _ = ProgramMode::pseudo(CellDensity::Tlc, CellDensity::Plc);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CellDensity::Qlc.to_string(), "QLC");
        let m = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Tlc);
        assert_eq!(m.to_string(), "pseudo-TLC (in PLC)");
        assert_eq!(ProgramMode::native(CellDensity::Slc).to_string(), "SLC");
    }

    #[test]
    fn relative_cell_count_is_inverse_density() {
        assert!((CellDensity::Tlc.relative_cell_count() - 1.0).abs() < 1e-9);
        assert!((CellDensity::Plc.relative_cell_count() - 0.6).abs() < 1e-9);
        assert!((CellDensity::Slc.relative_cell_count() - 3.0).abs() < 1e-9);
    }
}
