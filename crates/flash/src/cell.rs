//! Threshold-voltage cell model.
//!
//! Flash stores bits as analog charge: a cell programmed to one of `L`
//! voltage levels is read back by comparing its threshold voltage against
//! `L-1` read references (§2.1). Real cells are noisy — the threshold is a
//! random variable whose spread grows with program/erase wear, retention
//! time and read disturb. When adjacent level distributions overlap, reads
//! misclassify levels and bits flip.
//!
//! This module derives the raw bit error rate (RBER) from that overlap:
//! the level spacing is set by the *programmed* density while the noise is
//! set by the *physical* cell and its stress history. Pseudo-modes (wider
//! spacing on the same silicon) therefore get lower error rates and higher
//! effective endurance without any special-casing.

use crate::density::{CellDensity, ProgramMode};
use serde::{Deserialize, Serialize};

/// Gaussian tail function `Q(x) = P(N(0,1) > x)`.
///
/// Uses an Abramowitz–Stegun rational approximation in the bulk and the
/// asymptotic expansion in the tail, giving good *relative* accuracy out
/// to the `1e-12` probabilities the error model needs.
pub fn q_function(x: f64) -> f64 {
    if x < 0.0 {
        return 1.0 - q_function(-x);
    }
    if x > 3.0 {
        // Asymptotic expansion: phi(x)/x * (1 - 1/x^2 + 3/x^4 - 15/x^6).
        let phi = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let x2 = x * x;
        return (phi / x) * (1.0 - 1.0 / x2 + 3.0 / (x2 * x2) - 15.0 / (x2 * x2 * x2));
    }
    // Q(x) = erfc(x / sqrt(2)) / 2 with A&S 7.1.26 for erf.
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * z);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    0.5 * poly * (-z * z).exp()
}

/// Inverse of [`q_function`] on `(0, 0.5)`: returns `x` with `Q(x) = p`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 0.5)`.
pub fn q_inverse(p: f64) -> f64 {
    // sos-lint: allow(panic-path, "documented domain contract; callers pass fixed RBER design targets inside (0, 0.5)")
    assert!(p > 0.0 && p < 0.5, "q_inverse domain is (0, 0.5), got {p}");
    let (mut lo, mut hi) = (0.0_f64, 40.0_f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Stress history of a block of cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CellState {
    /// Program/erase cycles endured so far.
    pub pec: u32,
    /// Days elapsed since the data now resident was programmed.
    pub retention_days: f64,
    /// Reads issued to the block since it was last programmed.
    pub reads_since_program: u64,
}

impl CellState {
    /// A fresh, never-cycled block holding freshly-written data.
    pub fn fresh() -> Self {
        CellState::default()
    }
}

/// Noise model of one physical cell technology.
///
/// Calibrated so that a fresh cell read immediately after programming at
/// native density exhibits the `base_rber` typical for its generation, and
/// so that wear/retention growth reproduces the published endurance ladder
/// (see [`CellDensity::rated_endurance`]).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellModel {
    /// Physical cell density this model describes.
    pub physical: CellDensity,
    /// Threshold-voltage standard deviation at beginning of life, in
    /// units of the (normalised) voltage window.
    pub sigma0: f64,
    /// Wear coefficient: fractional sigma growth at rated endurance.
    pub wear_coef: f64,
    /// Wear exponent (super-linearity of wear damage).
    pub wear_exp: f64,
    /// Retention coefficient: sigma growth per `ln(1 + days)` at full wear.
    pub retention_coef: f64,
    /// Read-disturb coefficient: sigma growth per million reads.
    pub read_disturb_coef: f64,
}

/// Beginning-of-life RBER targets per density, from published
/// characterisation studies (Grupp FAST'12, Zambelli IMW'19 and the PLC
/// projections in Chatzieleftheriou HotStorage'20).
fn base_rber(density: CellDensity) -> f64 {
    match density {
        CellDensity::Slc => 1e-10,
        CellDensity::Mlc => 1e-9,
        CellDensity::Tlc => 5e-8,
        CellDensity::Qlc => 2e-6,
        // Calibrated so measured cycles-to-ECC-limit lands in the
        // paper's endurance-ratio bands (TLC/PLC 6-10, QLC/PLC ~2);
        // see experiment E3.
        CellDensity::Plc => 1e-5,
    }
}

impl CellModel {
    /// Builds the calibrated model for a physical density.
    ///
    /// `sigma0` is derived from the density's beginning-of-life RBER
    /// target so that [`CellModel::rber`] at zero stress and native
    /// programming reproduces it exactly.
    pub fn for_density(physical: CellDensity) -> Self {
        let levels = physical.levels() as f64;
        let bits = physical.bits_per_cell() as f64;
        let spacing = 1.0 / (levels - 1.0);
        // Per-bit RBER `r` corresponds to a per-cell level error of
        // `r * bits`, which is `2 (L-1)/L * Q(d / 2 sigma)`.
        let level_err = base_rber(physical) * bits;
        let q_target = level_err * levels / (2.0 * (levels - 1.0));
        let x0 = q_inverse(q_target);
        CellModel {
            physical,
            sigma0: spacing / (2.0 * x0),
            wear_coef: 0.85,
            wear_exp: 1.1,
            retention_coef: 0.10,
            read_disturb_coef: 0.03,
        }
    }

    /// The slow-changing part of the threshold-voltage standard
    /// deviation: beginning-of-life sigma widened by wear (oxide damage)
    /// and retention (charge leakage over time, faster on worn cells).
    ///
    /// Both inputs change only on program, erase, or an `advance_days`
    /// clock tick — never on a read — which is what makes the result
    /// memoizable per block (see [`RberCache`](crate::RberCache)). The
    /// transcendental work (`powf`, `ln`) all lives here.
    pub fn sigma_static(&self, pec: u32, retention_days: f64) -> f64 {
        let rated = self.physical.rated_endurance() as f64;
        let wear_frac = pec as f64 / rated;
        let wear = 1.0 + self.wear_coef * wear_frac.powf(self.wear_exp);
        let retention = 1.0
            + self.retention_coef * (1.0 + retention_days).ln() * (0.3 + 0.7 * wear_frac.min(2.0));
        self.sigma0 * wear * retention
    }

    /// Linear read-disturb multiplier: each read adds a fixed sliver of
    /// noise energy, so the first-order effect on the error rate is a
    /// factor linear in the read count. This is the only stress term
    /// that changes on the per-read hot path, and it costs one multiply.
    pub fn disturb_multiplier(&self, reads_since_program: u64) -> f64 {
        1.0 + self.read_disturb_coef * (reads_since_program as f64 / 1e6)
    }

    /// Threshold-voltage standard deviation under a given stress history.
    ///
    /// Wear widens distributions (oxide damage), retention shifts and
    /// widens them over time — faster on worn cells — and heavy read
    /// traffic adds disturb noise.
    pub fn sigma(&self, state: CellState) -> f64 {
        self.sigma_static(state.pec, state.retention_days)
            * self.disturb_multiplier(state.reads_since_program)
    }

    /// Raw bit error rate at zero read disturb: the memoizable part of
    /// [`CellModel::rber`]. The level spacing comes from the *logical*
    /// (programmed) density, the noise from the physical cell — this is
    /// what makes pseudo-modes more reliable on the same silicon.
    ///
    /// The Q-function evaluation (an `exp` plus a rational polynomial)
    /// lives here, on the memoizable side of the split: its inputs
    /// (`mode`, `pec`, `retention_days`) change only on program, erase,
    /// or `advance_days`, never on a read.
    ///
    /// # Panics
    ///
    /// Panics if `mode.physical` differs from the model's density.
    pub fn rber_static(&self, mode: ProgramMode, pec: u32, retention_days: f64) -> f64 {
        // sos-lint: allow(panic-path, "documented contract: the program mode must match the model's silicon; a mismatch is a configuration bug")
        assert_eq!(
            mode.physical, self.physical,
            "program mode physical density must match the cell model"
        );
        let levels = mode.logical.levels() as f64;
        let bits = mode.logical.bits_per_cell() as f64;
        let spacing = 1.0 / (levels - 1.0);
        let sigma = self.sigma_static(pec, retention_days);
        // Per-cell level error rate, spread across the logical bits.
        2.0 * (levels - 1.0) / levels * q_function(spacing / (2.0 * sigma)) / bits
    }

    /// Raw bit error rate for data programmed in `mode` under `state`.
    ///
    /// Structured as `rber_static × disturb_multiplier`, clamped to the
    /// coin-flip ceiling: the expensive wear/retention/Q-function work
    /// depends only on inputs that change at program/erase/clock-tick
    /// granularity, and read disturb enters as a linear multiplier on
    /// the error rate (the first-order expansion of its effect through
    /// the Q-function, exact at zero reads and within the model's
    /// calibration error for the <1% sigma shifts real read counts
    /// produce). That split is what lets the device memoize everything
    /// but one multiply off the per-read path.
    ///
    /// # Panics
    ///
    /// Panics if `mode.physical` differs from the model's density.
    pub fn rber(&self, mode: ProgramMode, state: CellState) -> f64 {
        (self.rber_static(mode, state.pec, state.retention_days)
            * self.disturb_multiplier(state.reads_since_program))
        .min(0.5)
    }

    /// Per-page raw bit error rate: [`CellModel::rber`] with the
    /// page-type asymmetry factor applied, computed naively with no
    /// caching. This is the reference oracle the memoized read path
    /// ([`RberCache`](crate::RberCache)) must reproduce **bit-identically**;
    /// the property test in `tests/proptest_rber.rs` pins that
    /// equivalence across program/erase/advance_days invalidations.
    ///
    /// # Panics
    ///
    /// Panics if `mode.physical` differs from the model's density.
    pub fn page_rber(&self, mode: ProgramMode, state: CellState, page_type: u32) -> f64 {
        (self.rber_static(mode, state.pec, state.retention_days)
            * Self::page_type_factor(mode, page_type)
            * self.disturb_multiplier(state.reads_since_program))
        .min(0.5)
    }

    /// Relative RBER multiplier for one *page type* of a multi-bit cell.
    ///
    /// A wordline of `b`-bit cells stores `b` pages (lower/middle/upper
    /// ...). Lower pages resolve coarse voltage splits and see fewer
    /// error-prone transitions; upper pages resolve the finest splits.
    /// The factors form a geometric ladder normalised to mean 1, so
    /// block-average models are unchanged while per-page reads show the
    /// published LSB-vs-MSB asymmetry.
    pub fn page_type_factor(mode: ProgramMode, page_type: u32) -> f64 {
        let bits = mode.logical.bits_per_cell();
        debug_assert!(page_type < bits, "page type beyond cell bits");
        if bits == 1 {
            return 1.0;
        }
        // Geometric spread of ~2x per level, normalised to mean 1.
        let spread: f64 = 1.9;
        let mean: f64 = (0..bits).map(|t| spread.powi(t as i32)).sum::<f64>() / bits as f64;
        spread.powi(page_type as i32) / mean // sos-lint: allow(panic-path, "f64 division: spread and mean are floats")
    }

    /// Program/erase cycles until the RBER under `mode` first exceeds
    /// `rber_limit`, assuming `retention_days` of retention at end of
    /// life. Returns `None` if the limit is never exceeded within
    /// `20x` rated endurance (effectively unlimited).
    pub fn cycles_to_rber(
        &self,
        mode: ProgramMode,
        rber_limit: f64,
        retention_days: f64,
    ) -> Option<u32> {
        let cap = self.physical.rated_endurance().saturating_mul(20);
        // RBER is monotonic in PEC; binary search for the crossing.
        let exceeds = |pec: u32| {
            self.rber(
                mode,
                CellState {
                    pec,
                    retention_days,
                    reads_since_program: 0,
                },
            ) > rber_limit
        };
        if !exceeds(cap) {
            return None;
        }
        if exceeds(0) {
            return Some(0);
        }
        let (mut lo, mut hi) = (0u32, cap);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if exceeds(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_function_known_values() {
        // Q(0) = 0.5, Q(1.2816) ~ 0.1, Q(3.09) ~ 1e-3.
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!((q_function(1.2816) - 0.1).abs() < 1e-3);
        assert!((q_function(3.09) - 1e-3).abs() < 1e-4);
    }

    #[test]
    fn q_function_tail_is_positive_and_decreasing() {
        let mut prev = 1.0;
        for i in 0..80 {
            let x = i as f64 * 0.25;
            let q = q_function(x);
            assert!(q > 0.0, "Q({x}) = {q}");
            assert!(q <= prev + 1e-12, "Q not decreasing at {x}");
            prev = q;
        }
    }

    #[test]
    fn q_inverse_roundtrip() {
        for &p in &[0.4, 0.1, 1e-3, 1e-6, 1e-9, 1e-12] {
            let x = q_inverse(p);
            let back = q_function(x);
            assert!(
                (back / p - 1.0).abs() < 1e-3,
                "roundtrip p={p}: x={x} back={back}"
            );
        }
    }

    #[test]
    fn fresh_rber_matches_calibration_target() {
        for d in CellDensity::ALL {
            let m = CellModel::for_density(d);
            let r = m.rber(ProgramMode::native(d), CellState::fresh());
            let target = base_rber(d);
            assert!(
                (r / target - 1.0).abs() < 0.05,
                "{d}: rber {r} vs target {target}"
            );
        }
    }

    #[test]
    fn rber_increases_with_wear_retention_and_reads() {
        let m = CellModel::for_density(CellDensity::Plc);
        let mode = ProgramMode::native(CellDensity::Plc);
        let base = m.rber(mode, CellState::fresh());
        let worn = m.rber(
            mode,
            CellState {
                pec: 400,
                retention_days: 0.0,
                reads_since_program: 0,
            },
        );
        let aged = m.rber(
            mode,
            CellState {
                pec: 400,
                retention_days: 365.0,
                reads_since_program: 0,
            },
        );
        let read_hammered = m.rber(
            mode,
            CellState {
                pec: 400,
                retention_days: 365.0,
                reads_since_program: 5_000_000,
            },
        );
        assert!(base < worn && worn < aged && aged < read_hammered);
    }

    #[test]
    fn pseudo_mode_has_lower_rber_than_native() {
        let m = CellModel::for_density(CellDensity::Plc);
        let state = CellState {
            pec: 300,
            retention_days: 90.0,
            reads_since_program: 0,
        };
        let native = m.rber(ProgramMode::native(CellDensity::Plc), state);
        let pqlc = m.rber(
            ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc),
            state,
        );
        let ptlc = m.rber(
            ProgramMode::pseudo(CellDensity::Plc, CellDensity::Tlc),
            state,
        );
        assert!(pqlc < native / 10.0, "pseudo-QLC {pqlc} vs native {native}");
        assert!(ptlc < pqlc, "pseudo-TLC {ptlc} vs pseudo-QLC {pqlc}");
    }

    #[test]
    fn denser_cells_fail_sooner_at_fixed_ecc_budget() {
        // With a typical mobile ECC budget, cycles-to-failure must follow
        // the endurance ladder ordering.
        let limit = 3e-3;
        let mut prev = u32::MAX;
        for d in CellDensity::ALL {
            let m = CellModel::for_density(d);
            let c = m
                .cycles_to_rber(ProgramMode::native(d), limit, 365.0)
                .unwrap_or(u32::MAX);
            assert!(c < prev, "{d}: {c} cycles not below previous {prev}");
            prev = c;
        }
    }

    #[test]
    fn cycles_to_rber_is_consistent_with_rber() {
        let m = CellModel::for_density(CellDensity::Qlc);
        let mode = ProgramMode::native(CellDensity::Qlc);
        let limit = 1e-3;
        let c = m.cycles_to_rber(mode, limit, 180.0).expect("finite life");
        let before = m.rber(
            mode,
            CellState {
                pec: c - 1,
                retention_days: 180.0,
                reads_since_program: 0,
            },
        );
        let after = m.rber(
            mode,
            CellState {
                pec: c,
                retention_days: 180.0,
                reads_since_program: 0,
            },
        );
        assert!(
            before <= limit && after > limit,
            "before={before} after={after}"
        );
    }

    #[test]
    fn pseudo_qlc_in_plc_extends_cycle_life() {
        let m = CellModel::for_density(CellDensity::Plc);
        let limit = 3e-3;
        let native = m
            .cycles_to_rber(ProgramMode::native(CellDensity::Plc), limit, 365.0)
            .expect("PLC native life is finite");
        let pseudo = m
            .cycles_to_rber(
                ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc),
                limit,
                365.0,
            )
            .unwrap_or(u32::MAX);
        assert!(
            pseudo as f64 >= 2.0 * native as f64,
            "pseudo-QLC life {pseudo} vs native {native}"
        );
    }

    #[test]
    fn page_type_factors_are_normalised_and_monotone() {
        for density in CellDensity::ALL {
            let mode = ProgramMode::native(density);
            let bits = density.bits_per_cell();
            let factors: Vec<f64> = (0..bits)
                .map(|t| CellModel::page_type_factor(mode, t))
                .collect();
            let mean: f64 = factors.iter().sum::<f64>() / bits as f64;
            assert!((mean - 1.0).abs() < 1e-9, "{density}: mean {mean}");
            for pair in factors.windows(2) {
                assert!(pair[1] > pair[0], "{density}: not monotone {factors:?}");
            }
        }
        // SLC has a single page type with factor exactly 1.
        assert_eq!(
            CellModel::page_type_factor(ProgramMode::native(CellDensity::Slc), 0),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "physical density must match")]
    fn mode_mismatch_panics() {
        let m = CellModel::for_density(CellDensity::Tlc);
        let _ = m.rber(ProgramMode::native(CellDensity::Qlc), CellState::fresh());
    }
}
