//! Exact-key memoization of the static RBER term.
//!
//! [`CellModel::rber`](crate::cell::CellModel::rber) splits into an
//! expensive static part (`powf`, `ln`, and a Q-function over wear and
//! retention) and a one-multiply read-disturb factor. The static part's
//! inputs — program mode, program/erase count, and the retention age of
//! the data — change only on program, erase, mode change, or an
//! `advance_days` clock tick; between those events every read of a page
//! programmed on the same day computes the identical value.
//!
//! [`RberCache`] exploits that: one cache per block, keyed **exactly**
//! (no quantisation) on the full bit pattern of `retention_days` plus
//! the page type, and invalidated wholesale whenever the block's
//! `(mode, pec)` epoch moves. Because the key is exact and the cached
//! value is produced by the very same `rber_static × page_type_factor`
//! expression the naive formula evaluates, the memoized read path is
//! bit-identical to recomputing from scratch — the property test in
//! `tests/proptest_rber.rs` pins this with `f64::to_bits` equality.

use crate::cell::CellModel;
use crate::density::ProgramMode;
use std::collections::HashMap;

/// Upper bound on cached entries per block; reached only by pathological
/// retention patterns (a block holding pages programmed on hundreds of
/// distinct days), in which case the cache resets and re-fills — a
/// correctness no-op, since entries are recomputed on demand.
const MAX_ENTRIES: usize = 512;

/// Per-block memo of `rber_static × page_type_factor` values.
///
/// The epoch is the block's `(mode, pec)` pair: an erase bumps `pec`, a
/// mode change swaps `mode`, and either invalidates every entry. Clock
/// advances and re-programs need no explicit invalidation because the
/// retention age of each page is part of the key — a new "now" or a new
/// `programmed_day` produces a different key and therefore a miss, never
/// a stale hit.
#[derive(Debug, Clone, Default)]
pub struct RberCache {
    epoch: Option<(ProgramMode, u32)>,
    entries: HashMap<(u64, u32), f64>,
}

impl RberCache {
    /// An empty cache.
    pub fn new() -> Self {
        RberCache::default()
    }

    /// Number of live entries (test observability).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `rber_static(mode, pec, retention_days) × page_type_factor`
    /// for one page read, memoized. The second tuple element reports
    /// whether this lookup was a cache hit, so the device can keep
    /// hit/miss counters without the cache borrowing its stats.
    ///
    /// # Panics
    ///
    /// Panics if `mode.physical` differs from the model's density (the
    /// same documented contract as [`CellModel::rber_static`]).
    pub fn lookup(
        &mut self,
        model: &CellModel,
        mode: ProgramMode,
        pec: u32,
        retention_days: f64,
        page_type: u32,
    ) -> (f64, bool) {
        if self.epoch != Some((mode, pec)) {
            self.entries.clear();
            self.epoch = Some((mode, pec));
        }
        if self.entries.len() >= MAX_ENTRIES {
            self.entries.clear();
        }
        let key = (retention_days.to_bits(), page_type);
        if let Some(&value) = self.entries.get(&key) {
            return (value, true);
        }
        let value = model.rber_static(mode, pec, retention_days)
            * CellModel::page_type_factor(mode, page_type);
        self.entries.insert(key, value);
        (value, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellState;
    use crate::density::CellDensity;

    fn oracle(model: &CellModel, mode: ProgramMode, pec: u32, days: f64, page_type: u32) -> f64 {
        model.rber_static(mode, pec, days) * CellModel::page_type_factor(mode, page_type)
    }

    #[test]
    fn hit_after_miss_is_bit_identical() {
        let model = CellModel::for_density(CellDensity::Plc);
        let mode = ProgramMode::native(CellDensity::Plc);
        let mut cache = RberCache::new();
        let (first, hit0) = cache.lookup(&model, mode, 120, 33.25, 2);
        let (second, hit1) = cache.lookup(&model, mode, 120, 33.25, 2);
        assert!(!hit0 && hit1);
        assert_eq!(first.to_bits(), second.to_bits());
        assert_eq!(
            first.to_bits(),
            oracle(&model, mode, 120, 33.25, 2).to_bits()
        );
    }

    #[test]
    fn erase_epoch_invalidates() {
        let model = CellModel::for_density(CellDensity::Qlc);
        let mode = ProgramMode::native(CellDensity::Qlc);
        let mut cache = RberCache::new();
        cache.lookup(&model, mode, 5, 10.0, 0);
        assert_eq!(cache.len(), 1);
        // Same retention key, new pec: must recompute, not reuse.
        let (value, hit) = cache.lookup(&model, mode, 6, 10.0, 0);
        assert!(!hit);
        assert_eq!(cache.len(), 1);
        assert_eq!(value.to_bits(), oracle(&model, mode, 6, 10.0, 0).to_bits());
    }

    #[test]
    fn mode_change_invalidates() {
        let model = CellModel::for_density(CellDensity::Plc);
        let native = ProgramMode::native(CellDensity::Plc);
        let pseudo = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc);
        let mut cache = RberCache::new();
        cache.lookup(&model, native, 0, 0.0, 0);
        let (value, hit) = cache.lookup(&model, pseudo, 0, 0.0, 0);
        assert!(!hit);
        assert_eq!(value.to_bits(), oracle(&model, pseudo, 0, 0.0, 0).to_bits());
    }

    #[test]
    fn distinct_retention_ages_coexist() {
        let model = CellModel::for_density(CellDensity::Tlc);
        let mode = ProgramMode::native(CellDensity::Tlc);
        let mut cache = RberCache::new();
        for day in 0..40 {
            cache.lookup(&model, mode, 9, day as f64 * 0.5, 1);
        }
        assert_eq!(cache.len(), 40);
        // All 40 still hit.
        for day in 0..40 {
            let (_, hit) = cache.lookup(&model, mode, 9, day as f64 * 0.5, 1);
            assert!(hit, "day {day} evicted unexpectedly");
        }
    }

    #[test]
    fn capacity_reset_stays_correct() {
        let model = CellModel::for_density(CellDensity::Tlc);
        let mode = ProgramMode::native(CellDensity::Tlc);
        let mut cache = RberCache::new();
        for i in 0..(MAX_ENTRIES * 2 + 7) {
            let days = i as f64 * 0.125;
            let (value, _) = cache.lookup(&model, mode, 3, days, 0);
            assert_eq!(value.to_bits(), oracle(&model, mode, 3, days, 0).to_bits());
        }
        assert!(cache.len() <= MAX_ENTRIES);
    }

    #[test]
    fn matches_full_page_rber_with_disturb_applied() {
        let model = CellModel::for_density(CellDensity::Plc);
        let mode = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc);
        let mut cache = RberCache::new();
        let state = CellState {
            pec: 301,
            retention_days: 77.5,
            reads_since_program: 123_456,
        };
        let (cached, _) = cache.lookup(&model, mode, state.pec, state.retention_days, 3);
        let assembled = (cached * model.disturb_multiplier(state.reads_since_program)).min(0.5);
        let naive = model.page_rber(mode, state, 3);
        assert_eq!(assembled.to_bits(), naive.to_bits());
    }
}
