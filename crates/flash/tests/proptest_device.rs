//! Property-based tests for the flash device simulator.

use proptest::prelude::*;
use sos_flash::{CellDensity, DeviceConfig, FlashDevice, PageAddr, ProgramMode};

fn addr(device: &FlashDevice, block: u64, page: u32) -> PageAddr {
    PageAddr {
        block: device.geometry().block_addr(block),
        page,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fresh TLC roundtrips bit-exactly (error injection is negligible
    /// at BOL rates for a single page).
    #[test]
    fn fresh_tlc_roundtrip(byte in any::<u8>(), block in 0u64..64, seed in any::<u64>()) {
        let mut device = FlashDevice::new(&DeviceConfig::tiny(CellDensity::Tlc).with_seed(seed));
        let data = vec![byte; device.page_total_bytes()];
        device.program(addr(&device, block, 0), &data).expect("program");
        let out = device.read(addr(&device, block, 0)).expect("read");
        prop_assert_eq!(out.data, data);
    }

    /// RBER is monotone in wear for every mode on PLC silicon.
    #[test]
    fn rber_monotone_in_wear(pec_low in 0u32..400, delta in 1u32..400) {
        use sos_flash::cell::{CellModel, CellState};
        let model = CellModel::for_density(CellDensity::Plc);
        for logical in [CellDensity::Slc, CellDensity::Tlc, CellDensity::Qlc, CellDensity::Plc] {
            let mode = if logical == CellDensity::Plc {
                ProgramMode::native(CellDensity::Plc)
            } else {
                ProgramMode::pseudo(CellDensity::Plc, logical)
            };
            let state = |pec| CellState { pec, retention_days: 30.0, reads_since_program: 0 };
            let low = model.rber(mode, state(pec_low));
            let high = model.rber(mode, state(pec_low + delta));
            prop_assert!(high >= low, "{mode}: {high} < {low}");
        }
    }

    /// The geometry addressing is a bijection for arbitrary shapes.
    #[test]
    fn geometry_bijection(
        channels in 1u32..4,
        dies in 1u32..3,
        planes in 1u32..3,
        blocks in 1u32..20,
        pages in 1u32..32,
    ) {
        let geometry = sos_flash::Geometry {
            channels,
            dies_per_channel: dies,
            planes_per_die: planes,
            blocks_per_plane: blocks,
            pages_per_block: pages,
            page_bytes: 512,
            spare_bytes: 32,
        };
        for index in 0..geometry.total_pages() {
            let address = geometry.page_addr(index);
            prop_assert_eq!(geometry.page_index(address), index);
        }
    }

    /// Erase counts accumulate exactly once per erase, independent of
    /// interleaving with programs.
    #[test]
    fn pec_accounting(erases in 1u32..30, seed in any::<u64>()) {
        let mut device = FlashDevice::new(&DeviceConfig::tiny(CellDensity::Tlc).with_seed(seed));
        let data = vec![7u8; device.page_total_bytes()];
        for cycle in 0..erases {
            device.program(addr(&device, 2, 0), &data).expect("program");
            device.erase(2).expect("erase");
            prop_assert_eq!(device.block_pec(2).expect("pec"), cycle + 1);
        }
    }

    /// Pseudo-mode usable pages scale by the bits ratio and never exceed
    /// the native page count.
    #[test]
    fn pseudo_usable_pages(seed in any::<u64>()) {
        let mut device = FlashDevice::new(&DeviceConfig::tiny(CellDensity::Plc).with_seed(seed));
        let native = device.usable_pages(0).expect("native");
        for logical in [CellDensity::Slc, CellDensity::Mlc, CellDensity::Tlc, CellDensity::Qlc] {
            device
                .set_block_mode(0, ProgramMode::pseudo(CellDensity::Plc, logical))
                .expect("erased block accepts mode");
            let usable = device.usable_pages(0).expect("usable");
            let expected = native as u64 * logical.bits_per_cell() as u64 / 5;
            prop_assert_eq!(usable as u64, expected);
        }
    }
}
