//! Shadow-model property tests for the struct-of-arrays device state
//! and the block-batched error sampler.
//!
//! Two oracles, two properties:
//!
//! * **Backend shadow** — the dense struct-of-arrays page store
//!   ([`FlashDevice::new`]) against the legacy per-page map
//!   ([`FlashDevice::new_with_legacy_store`]). For identical operation
//!   sequences — programs, reads, erases, re-modes, retention aging,
//!   power cuts and power cycles — every observable (read payloads,
//!   injected error counts and positions, latencies, error returns,
//!   cumulative stats, block snapshots) must be **bit-identical**. The
//!   backends share one RNG discipline, so this is exact equality, not
//!   distribution matching.
//! * **Sampler distribution** — batched Poisson-split error injection
//!   against the per-page oracle. The two draw from the RNG stream
//!   differently, so trajectories legitimately diverge read by read;
//!   what must agree is the error-count *distribution*. A fixed seed
//!   grid keeps the statistical check deterministic.

use proptest::prelude::*;
use sos_flash::{
    CellDensity, DeviceConfig, ErrorSampling, FaultAt, FaultInjector, FaultKind, FaultPlan,
    FlashDevice, PageAddr, ProgramMode,
};

/// Operations the shadow pair replays. Block indices are taken modulo a
/// small window so programs, erases and reads collide often.
#[derive(Debug, Clone)]
enum Op {
    /// Program the next in-order page of a block (skipped when full).
    Program { block: u64, byte: u8 },
    /// Read one already-programmed page of a block (skipped when empty).
    Read { block: u64, page_hint: u32 },
    /// Erase a block (whatever state it is in).
    Erase { block: u64 },
    /// Let retention age accrue.
    Advance { tenths: u16 },
    /// Re-mode an erased block to pseudo-SLC (errors when not erased —
    /// the error must match across backends too).
    RemodeSlc { block: u64 },
    /// Recover from a power cut (no-op when powered).
    PowerCycle,
}

const BLOCKS: u64 = 6;

fn op_strategy() -> impl Strategy<Value = Op> {
    // Program/read arms are repeated so they dominate (the vendored
    // proptest has no weighted oneof): blocks fill and reads have
    // targets, with occasional erases, aging, re-modes and cycles.
    prop_oneof![
        (0u64..BLOCKS, any::<u8>()).prop_map(|(block, byte)| Op::Program { block, byte }),
        (0u64..BLOCKS, any::<u8>()).prop_map(|(block, byte)| Op::Program { block, byte }),
        (0u64..BLOCKS, any::<u8>()).prop_map(|(block, byte)| Op::Program { block, byte }),
        (0u64..BLOCKS, any::<u32>()).prop_map(|(block, page_hint)| Op::Read { block, page_hint }),
        (0u64..BLOCKS, any::<u32>()).prop_map(|(block, page_hint)| Op::Read { block, page_hint }),
        (0u64..BLOCKS, any::<u32>()).prop_map(|(block, page_hint)| Op::Read { block, page_hint }),
        (0u64..BLOCKS).prop_map(|block| Op::Erase { block }),
        (1u16..200).prop_map(|tenths| Op::Advance { tenths }),
        (0u64..BLOCKS).prop_map(|block| Op::RemodeSlc { block }),
        Just(Op::PowerCycle),
    ]
}

fn addr(device: &FlashDevice, block: u64, page: u32) -> PageAddr {
    PageAddr {
        block: device.geometry().block_addr(block),
        page,
    }
}

/// Replays one op on a device, returning a comparable trace record.
/// Payload bytes ride in [`Op::Program`]; page length comes from the
/// device so both backends build identical buffers.
fn apply(device: &mut FlashDevice, op: &Op) -> String {
    match op {
        Op::Program { block, byte } => {
            let Ok(Some(page)) = device.next_free_page(*block) else {
                return "program: skipped (full/bad)".into();
            };
            let data = vec![*byte; device.page_total_bytes()];
            format!(
                "program: {:?}",
                device.program(addr(device, *block, page), &data)
            )
        }
        Op::Read { block, page_hint } => {
            let programmed = match device.next_free_page(*block) {
                Ok(Some(next)) => next,
                Ok(None) => device.usable_pages(*block).unwrap_or(0),
                Err(_) => 0,
            };
            if programmed == 0 {
                return "read: skipped (empty)".into();
            }
            let page = page_hint % programmed;
            format!("read: {:?}", device.read(addr(device, *block, page)))
        }
        Op::Erase { block } => format!("erase: {:?}", device.erase(*block)),
        Op::Advance { tenths } => {
            device.advance_days(f64::from(*tenths) / 10.0);
            "advance".into()
        }
        Op::RemodeSlc { block } => {
            let mode = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Slc);
            format!("remode: {:?}", device.set_block_mode(*block, mode))
        }
        Op::PowerCycle => {
            device.power_cycle();
            "power-cycle".into()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense vs legacy page store: identical op sequences (including a
    /// power cut landing mid-sequence) must produce identical traces,
    /// stats and final block snapshots, under either sampling strategy.
    #[test]
    fn dense_and_legacy_backends_are_bit_identical(
        ops in proptest::collection::vec(op_strategy(), 10..120),
        seed in any::<u64>(),
        cut_at in 1u64..600,
        batched in any::<bool>(),
    ) {
        let config = DeviceConfig::tiny(CellDensity::Plc).with_seed(seed);
        let mut dense = FlashDevice::new(&config);
        let mut legacy = FlashDevice::new_with_legacy_store(&config);
        let sampling = if batched { ErrorSampling::Batched } else { ErrorSampling::PerPage };
        for device in [&mut dense, &mut legacy] {
            device.set_error_sampling(sampling);
            let mut injector = FaultInjector::new(seed ^ 0x5AD0);
            injector.arm(FaultPlan { kind: FaultKind::PowerCut, at: FaultAt::OpCount(cut_at) });
            device.attach_injector(injector);
        }
        for (index, op) in ops.iter().enumerate() {
            let dense_trace = apply(&mut dense, op);
            let legacy_trace = apply(&mut legacy, op);
            prop_assert_eq!(
                &dense_trace, &legacy_trace,
                "op {} ({:?}) diverged between backends", index, op
            );
        }
        prop_assert_eq!(dense.stats(), legacy.stats());
        prop_assert_eq!(dense.snapshot_blocks(), legacy.snapshot_blocks());
        prop_assert_eq!(dense.now_days(), legacy.now_days());
    }
}

/// Batched vs per-page error injection: same aged device, same read
/// mix, independent RNG trajectories — the mean injected-error count
/// per read must agree. Seeds are a fixed grid (not proptest-drawn) so
/// the statistical tolerance is checked against one deterministic
/// sample forever, and a pass can never flake.
#[test]
fn batched_error_counts_match_per_page_distribution() {
    const SEEDS: u64 = 24;
    const READS_PER_SEED: u32 = 2_000;
    let mut totals = [0u64; 2];
    let mut reads = [0u64; 2];
    for seed in 0..SEEDS {
        for (slot, sampling) in [ErrorSampling::PerPage, ErrorSampling::Batched]
            .into_iter()
            .enumerate()
        {
            let config = DeviceConfig::tiny(CellDensity::Plc).with_seed(seed * 7919 + 13);
            let mut device = FlashDevice::new(&config);
            device.set_error_sampling(sampling);
            let data = vec![0x5Au8; device.page_total_bytes()];
            // Wear the block so the RBER (and thus the expected error
            // count) is well off zero, then age the data.
            for _ in 0..40 {
                device.program(addr(&device, 0, 0), &data).expect("program");
                device.erase(0).expect("erase");
            }
            let pages = device.usable_pages(0).expect("usable");
            for page in 0..pages {
                device
                    .program(addr(&device, 0, page), &data)
                    .expect("program");
            }
            device.advance_days(90.0);
            for i in 0..READS_PER_SEED {
                device.read(addr(&device, 0, i % pages)).expect("read");
            }
            totals[slot] += device.stats().bit_errors_injected;
            reads[slot] += u64::from(READS_PER_SEED);
        }
    }
    let per_page_mean = totals[0] as f64 / reads[0] as f64;
    let batched_mean = totals[1] as f64 / reads[1] as f64;
    assert!(
        per_page_mean > 0.5,
        "workload too clean to compare distributions (mean {per_page_mean})"
    );
    let ratio = batched_mean / per_page_mean;
    assert!(
        (0.97..=1.03).contains(&ratio),
        "batched mean {batched_mean:.4} vs per-page mean {per_page_mean:.4} (ratio {ratio:.4})"
    );
}
