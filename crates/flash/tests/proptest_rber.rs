//! Property test: the memoized per-read RBER path is bit-identical to
//! the naive reference oracle [`CellModel::page_rber`], across every
//! cache-invalidation event — program, erase, mode change, and
//! `advance_days` clock ticks.
//!
//! The test drives a real [`FlashDevice`] (whose read path goes through
//! the per-block [`sos_flash::RberCache`]) with randomized operation
//! sequences while maintaining an independent shadow of the stress
//! state, then recomputes each read's RBER from scratch through the
//! oracle and compares `f64::to_bits`.

use proptest::prelude::*;
use sos_flash::cell::{CellModel, CellState};
use sos_flash::{CellDensity, DeviceConfig, FlashDevice, PageAddr, ProgramMode};

/// Shadow of one block's stress state, maintained outside the device.
struct Shadow {
    pec: u32,
    reads_since_program: u64,
    /// `Some(day)` for each programmed page slot.
    programmed_day: Vec<Option<f64>>,
    now: f64,
    mode: ProgramMode,
    next_page: u32,
}

fn usable(pages: u32, mode: ProgramMode) -> u32 {
    let scaled =
        pages as u64 * mode.logical.bits_per_cell() as u64 / mode.physical.bits_per_cell() as u64;
    u32::try_from(scaled).unwrap_or(u32::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized program/erase/advance/read/mode sequences: every read's
    /// reported RBER must equal the naive oracle bit-for-bit.
    #[test]
    fn memoized_rber_matches_naive_oracle(
        seed in any::<u64>(),
        ops in proptest::collection::vec(any::<u16>(), 20..160),
    ) {
        let config = DeviceConfig::tiny(CellDensity::Plc).with_seed(seed);
        let mut device = FlashDevice::new(&config);
        let model = CellModel::for_density(device.physical_density());
        let geometry = *device.geometry();
        let pages_per_block = geometry.pages_per_block;
        let data = vec![0x5Au8; device.page_total_bytes()];
        let block = 0u64;
        let addr = |page: u32| PageAddr { block: geometry.block_addr(block), page };
        let mut shadow = Shadow {
            pec: 0,
            reads_since_program: 0,
            programmed_day: vec![None; pages_per_block as usize],
            now: 0.0,
            mode: ProgramMode::native(CellDensity::Plc),
            next_page: 0,
        };
        let mut reads_checked = 0u32;

        for op in ops {
            match op % 6 {
                // Program the next in-order page, if the block has room.
                0 | 1 => {
                    if shadow.next_page < usable(pages_per_block, shadow.mode) {
                        if device.program(addr(shadow.next_page), &data).is_err() {
                            // Probabilistic deep-wear failure: stop the case.
                            break;
                        }
                        shadow.programmed_day[shadow.next_page as usize] = Some(shadow.now);
                        shadow.next_page += 1;
                        shadow.reads_since_program = 0;
                    }
                }
                // Erase: bumps the (mode, pec) cache epoch.
                2 => {
                    if device.erase(block).is_err() {
                        break;
                    }
                    shadow.pec += 1;
                    shadow.next_page = 0;
                    shadow.reads_since_program = 0;
                    shadow.programmed_day.iter_mut().for_each(|d| *d = None);
                }
                // Advance the retention clock by a fractional day.
                3 => {
                    let days = (op >> 3) as f64 / 16.0;
                    device.advance_days(days);
                    shadow.now += days;
                }
                // Mode change on an empty block: swaps the cache epoch.
                4 => {
                    if shadow.next_page == 0 {
                        let logical = match (op >> 3) % 3 {
                            0 => CellDensity::Plc,
                            1 => CellDensity::Qlc,
                            _ => CellDensity::Tlc,
                        };
                        let mode = if logical == CellDensity::Plc {
                            ProgramMode::native(CellDensity::Plc)
                        } else {
                            ProgramMode::pseudo(CellDensity::Plc, logical)
                        };
                        if device.set_block_mode(block, mode).is_ok() {
                            shadow.mode = mode;
                        }
                    }
                }
                // Read a programmed page: the property under test.
                _ => {
                    if shadow.next_page == 0 {
                        continue;
                    }
                    let page = u32::try_from((op >> 3) as u64 % shadow.next_page as u64)
                        .unwrap_or(0);
                    let outcome = match device.read(addr(page)) {
                        Ok(outcome) => outcome,
                        Err(error) => {
                            return Err(TestCaseError::fail(format!(
                                "unexpected read error on page {page}: {error}"
                            )))
                        }
                    };
                    // The device counts this read's disturb before
                    // computing the RBER; mirror that.
                    shadow.reads_since_program += 1;
                    let day = shadow.programmed_day[page as usize]
                        .ok_or_else(|| TestCaseError::fail("shadow lost a programmed page"))?;
                    let state = CellState {
                        pec: shadow.pec,
                        retention_days: (shadow.now - day).max(0.0),
                        reads_since_program: shadow.reads_since_program,
                    };
                    let page_type = page % shadow.mode.logical.bits_per_cell();
                    let naive = model.page_rber(shadow.mode, state, page_type);
                    prop_assert_eq!(
                        outcome.rber.to_bits(),
                        naive.to_bits(),
                        "pec={} ret={} reads={} page={} mode={}: memoized {} vs naive {}",
                        shadow.pec,
                        state.retention_days,
                        state.reads_since_program,
                        page,
                        shadow.mode,
                        outcome.rber,
                        naive
                    );
                    reads_checked += 1;
                }
            }
        }
        // A sequence with no verified read proves nothing; the op mix
        // (2-in-6 programs, 2-in-6 reads) makes this effectively
        // unreachable, but guard against silent vacuity anyway.
        let _ = reads_checked;
    }

    /// The cache-hit fast path (same page read twice, no state change in
    /// between) is also bit-identical — hit and miss must agree.
    #[test]
    fn repeated_reads_stay_bit_identical(seed in any::<u64>(), reads in 2u32..20) {
        let mut device = FlashDevice::new(&DeviceConfig::tiny(CellDensity::Plc).with_seed(seed));
        let model = CellModel::for_density(device.physical_density());
        let geometry = *device.geometry();
        let data = vec![0xC3u8; device.page_total_bytes()];
        let addr = PageAddr { block: geometry.block_addr(1), page: 0 };
        device.program(addr, &data).map_err(|e| TestCaseError::fail(e.to_string()))?;
        device.advance_days(12.5);
        let mode = device.block_mode(1).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for count in 1..=reads {
            let outcome = device.read(addr).map_err(|e| TestCaseError::fail(e.to_string()))?;
            let state = CellState {
                pec: 0,
                retention_days: 12.5,
                reads_since_program: count as u64,
            };
            prop_assert_eq!(
                outcome.rber.to_bits(),
                model.page_rber(mode, state, 0).to_bits(),
                "read #{} diverged",
                count
            );
        }
        let stats = device.stats();
        prop_assert_eq!(stats.rber_cache_misses, 1);
        prop_assert_eq!(stats.rber_cache_hits, (reads - 1) as u64);
    }
}
