//! A repo-specific lint runner over the workspace sources.
//!
//! Since PR 3 the rules run on the spanned token stream from
//! [`crate::parse`] instead of blanked source lines: string literals
//! and comments are distinct token kinds (so text inside them cannot
//! trip a rule), `cfg(test)` regions come from the item extractor
//! (including `cfg(any(test, …))` / `cfg(all(test, …))` forms), and
//! constructs split across lines by rustfmt — `.unwrap()` with the dot
//! on the previous line — are matched on adjacent tokens, not on line
//! text.
//!
//! Rules:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` are banned in non-test
//!   code of the storage stack (`sos-flash`, `sos-ftl`, `sos-core`,
//!   `sos-hostfs`): the simulator must degrade, not abort.
//! * **no-f32** — carbon accounting (`sos-carbon`) must stay in `f64`;
//!   embodied-carbon sums are small differences of large numbers.
//! * **pub-docs** — every `pub` item in `sos-core` and `sos-ftl`
//!   carries a doc comment.
//! * **no-sleep** — simulated time is advanced explicitly
//!   (`advance_days`); `std::thread::sleep` never belongs in simulation
//!   code.
//! * **no-debug-macros** — `todo!()`, `unimplemented!()` and `dbg!()`
//!   are banned in non-test code across every crate: stubs must be
//!   gated or completed before merging, and debug prints never ship.
//! * **no-lossy-cast** — `as u8` / `as u16` / `as u32` are banned in
//!   non-test `sos-flash` and `sos-ftl` code: a truncating cast on an
//!   address or count silently corrupts the mapping tables that
//!   recovery rebuilds from OOB metadata. Use `u32::try_from(x)` (or a
//!   suppression arguing the value's range) instead.
//! * **bad-suppression** — a `// sos-lint: allow(…)` comment that does
//!   not parse, or lacks a justification, is itself a finding.
//!
//! All rules except `bad-suppression` honour inline suppressions
//! ([`crate::suppress`]): `// sos-lint: allow(<rule>, "<why>")`.

use crate::parse::lexer::TokenKind;
use crate::parse::{SourceFile, Workspace};
use crate::suppress::SuppressionSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be free of `.unwrap()` / `.expect(`.
const NO_UNWRAP_CRATES: &[&str] = &["flash", "ftl", "core", "hostfs"];
/// Crates whose accounting paths must not use `f32`.
const NO_F32_CRATES: &[&str] = &["carbon"];
/// Crates whose public API must be fully documented.
const DOC_CRATES: &[&str] = &["core", "ftl"];
/// Crates whose non-test code must not use truncating `as` casts.
const NO_LOSSY_CAST_CRATES: &[&str] = &["flash", "ftl"];
/// The truncating cast targets the no-lossy-cast rule bans.
const LOSSY_CAST_TARGETS: &[&str] = &["u8", "u16", "u32"];
/// Macros banned outside test code in every crate.
const BANNED_MACROS: &[&str] = &["todo", "unimplemented", "dbg"];

/// One lint rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// File the finding is in (relative to the workspace root).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The result of a lint run: surviving findings plus the count of
/// findings silenced by justified suppressions.
#[derive(Debug, Clone, Default)]
pub struct LintOutcome {
    /// Findings not covered by a suppression, sorted by file and line.
    pub findings: Vec<LintFinding>,
    /// Findings silenced by a `sos-lint: allow(…)` comment.
    pub suppressed: usize,
}

/// Runs every lint rule over `root/crates/*/src`, returning findings
/// sorted by file and line. An empty vector means the tree is clean.
pub fn run_lints(root: &Path) -> Vec<LintFinding> {
    run_lints_on(&Workspace::load(root)).findings
}

/// Runs every lint rule over an already-parsed workspace.
pub fn run_lints_on(workspace: &Workspace) -> LintOutcome {
    let mut outcome = LintOutcome::default();
    for file in &workspace.files {
        lint_file(file, &mut outcome);
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    outcome
}

/// Runs all rules over one parsed file.
fn lint_file(file: &SourceFile, outcome: &mut LintOutcome) {
    let suppressions = SuppressionSet::collect(file);
    for (line, problem) in &suppressions.malformed {
        // Deliberately not suppressible: a broken suppression must be
        // fixed, not allowed away.
        outcome.findings.push(LintFinding {
            file: file.path.clone(),
            line: *line,
            rule: "bad-suppression",
            message: problem.clone(),
        });
    }

    let crate_name = file.crate_name.as_str();
    let check_unwrap = NO_UNWRAP_CRATES.contains(&crate_name);
    let check_f32 = NO_F32_CRATES.contains(&crate_name);
    let check_docs = DOC_CRATES.contains(&crate_name);
    let check_casts = NO_LOSSY_CAST_CRATES.contains(&crate_name);

    let source = &file.source;
    let tokens = &file.tokens;
    let raw_lines: Vec<&str> = source.lines().collect();
    let idx: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text_at = |k: usize| tokens[idx[k]].text(source);

    let mut emit = |line: usize, rule: &'static str, message: String| {
        if suppressions.allows(rule, line) {
            outcome.suppressed += 1;
        } else {
            outcome.findings.push(LintFinding {
                file: file.path.clone(),
                line,
                rule,
                message,
            });
        }
    };

    for k in 0..idx.len() {
        let token = &tokens[idx[k]];
        if token.kind != TokenKind::Ident || file.items.line_in_test(token.line) {
            continue;
        }
        let text = token.text(source);
        let prev = k.checked_sub(1).map(&text_at);
        let next = (k + 1 < idx.len()).then(|| text_at(k + 1));

        if check_unwrap
            && matches!(text, "unwrap" | "expect")
            && prev == Some(".")
            && next == Some("(")
        {
            emit(
                token.line,
                "no-unwrap",
                format!(".{text}() in non-test storage-stack code"),
            );
        }
        if check_f32 && text == "f32" {
            emit(
                token.line,
                "no-f32",
                "f32 in carbon accounting (use f64)".to_string(),
            );
        }
        if text == "sleep" && prev == Some("::") && k.checked_sub(2).map(&text_at) == Some("thread")
        {
            emit(
                token.line,
                "no-sleep",
                "std::thread::sleep in simulation code".to_string(),
            );
        }
        if BANNED_MACROS.contains(&text)
            && next == Some("!")
            && (k + 2 < idx.len())
            && matches!(text_at(k + 2), "(" | "[" | "{")
        {
            emit(
                token.line,
                "no-debug-macros",
                format!("{text}!() in non-test code"),
            );
        }
        if check_casts && text == "as" {
            if let Some(target) = next.filter(|n| LOSSY_CAST_TARGETS.contains(n)) {
                emit(
                    token.line,
                    "no-lossy-cast",
                    format!(
                        "lossy `as {target}` cast in storage-stack code (use {target}::try_from)"
                    ),
                );
            }
        }
        if check_docs
            && text == "pub"
            && is_line_start(tokens, &idx, k)
            && documentable_item(&idx, k, tokens, source)
            && !has_doc_comment(&raw_lines, token.line)
        {
            emit(
                token.line,
                "pub-docs",
                format!(
                    "undocumented public item: {}",
                    item_signature(file, token.line)
                ),
            );
        }
    }
}

/// Is the token at `idx[k]` the first non-comment token on its line?
fn is_line_start(tokens: &[crate::parse::lexer::Token], idx: &[usize], k: usize) -> bool {
    match k.checked_sub(1) {
        None => true,
        Some(prev) => tokens[idx[prev]].line != tokens[idx[k]].line,
    }
}

/// Does `pub` at `idx[k]` introduce an item the pub-docs rule covers?
/// Matches the documentable set: `pub [async|unsafe|const] fn`,
/// `pub struct/enum/trait/mod/const/static/type/union` — and skips
/// `pub mod name;` (an external module documented by `//!` in its own
/// file).
fn documentable_item(
    idx: &[usize],
    k: usize,
    tokens: &[crate::parse::lexer::Token],
    source: &str,
) -> bool {
    let text_at = |j: usize| idx.get(j).map(|&i| tokens[i].text(source));
    match text_at(k + 1) {
        Some("fn" | "struct" | "enum" | "trait" | "const" | "static" | "type" | "union") => true,
        Some("async" | "unsafe") => text_at(k + 2) == Some("fn"),
        // `pub mod name;` → external file, skip; `pub mod name {` →
        // inline, documentable.
        Some("mod") => text_at(k + 3) != Some(";"),
        _ => false,
    }
}

/// Is the item on 1-based `line` preceded by a doc comment, allowing
/// attribute lines (and multi-line attribute tails) in between?
fn has_doc_comment(raw_lines: &[&str], line: usize) -> bool {
    let mut i = line.saturating_sub(1); // index of the item line
    while i > 0 {
        i -= 1;
        let trimmed = raw_lines[i].trim();
        if trimmed.starts_with("#[") || trimmed.starts_with(')') || trimmed.starts_with(']') {
            continue;
        }
        return trimmed.starts_with("///") || trimmed.starts_with("//!");
    }
    false
}

/// The item signature for a pub-docs message: the raw line with
/// string/char literals and comments blanked, cut at the opening brace.
fn item_signature(file: &SourceFile, line: usize) -> String {
    let text = file.line_text(line);
    // Byte offset where this line starts in the file.
    let line_start = file
        .source
        .lines()
        .take(line.saturating_sub(1))
        .map(|l| l.len() + 1)
        .sum::<usize>();
    let line_end = line_start + text.len();
    let mut cleaned: Vec<char> = text.chars().collect();
    for token in &file.tokens {
        let blank = matches!(token.kind, TokenKind::Str | TokenKind::Char) || token.is_comment();
        if !blank || token.end <= line_start || token.start >= line_end {
            continue;
        }
        let from = token.start.max(line_start) - line_start;
        let to = token.end.min(line_end) - line_start;
        // Byte offsets equal char offsets only for ASCII; walk chars.
        let mut byte = 0usize;
        for slot in cleaned.iter_mut() {
            if byte >= from && byte < to {
                *slot = ' ';
            }
            byte += slot.len_utf8();
        }
    }
    let cleaned: String = cleaned.into_iter().collect();
    cleaned
        .trim_start()
        .split('{')
        .next()
        .unwrap_or("")
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Workspace;

    fn lint(crate_name: &str, src: &str) -> LintOutcome {
        let path = format!("crates/{crate_name}/src/x.rs");
        run_lints_on(&Workspace::from_sources(&[(crate_name, &path, src)]))
    }

    fn rules(outcome: &LintOutcome, rule: &str) -> Vec<usize> {
        outcome
            .findings
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn strings_and_comments_cannot_trip_rules() {
        let out = lint(
            "ftl",
            "fn f() {\n    let s = \".unwrap()\"; // .unwrap()\n    let _ = s;\n}\n",
        );
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unwrap_rule_fires_outside_tests_only() {
        let src =
            "fn live(x: Option<u32>) { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t(y: Option<u32>) { y.unwrap(); }\n}\n";
        let out = lint("ftl", src);
        assert_eq!(rules(&out, "no-unwrap"), vec![1]);
    }

    #[test]
    fn multi_line_unwrap_is_caught() {
        // rustfmt splits long chains; the dot lands on the line before.
        let src = "fn live(x: Option<u32>) -> u32 {\n    x.map(|v| v + 1)\n        .unwrap()\n}\n";
        let out = lint("flash", src);
        assert_eq!(rules(&out, "no-unwrap"), vec![3]);
        let src2 =
            "fn live(x: Option<u32>) -> u32 {\n    x.expect(\n        \"present\",\n    )\n}\n";
        let out2 = lint("flash", src2);
        assert_eq!(rules(&out2, "no-unwrap"), vec![2]);
    }

    #[test]
    fn any_and_all_cfg_test_regions_are_recognized() {
        for gate in [
            "#[cfg(test)]",
            "#[cfg(any(test, feature = \"x\"))]",
            "#[cfg(all(test, unix))]",
        ] {
            let src =
                format!("{gate}\nmod helpers {{\n    fn t(y: Option<u32>) {{ y.unwrap(); }}\n}}\n");
            let out = lint("ftl", &src);
            assert!(out.findings.is_empty(), "{gate}: {:?}", out.findings);
        }
        // …but cfg(not(test)) code is live.
        let src = "#[cfg(not(test))]\nmod live {\n    fn f(y: Option<u32>) { y.unwrap(); }\n}\n";
        let out = lint("ftl", src);
        assert_eq!(rules(&out, "no-unwrap"), vec![3]);
    }

    #[test]
    fn debug_macros_banned_outside_tests_in_any_crate() {
        let src = "fn live() { todo!(); }\nfn log(x: u32) { dbg!(x); }\nfn soon() { unimplemented!(\"later\") }\nfn fine() { my_todo!(); idbg!(1); }\n#[cfg(test)]\nmod tests {\n    fn t() { todo!() }\n}\n";
        let out = lint("workload", src);
        assert_eq!(rules(&out, "no-debug-macros"), vec![1, 2, 3]);
    }

    #[test]
    fn sleep_rule_covers_the_bench_runner() {
        // The parallel experiment runner must never sleep-wait for
        // workers: determinism and the honesty of its wall-clock
        // diagnostics both depend on it, so bench gets no exemption.
        let path = "crates/bench/src/runner.rs";
        let src = "pub fn run_tasks() { std::thread::sleep(d); }\n";
        let out = run_lints_on(&Workspace::from_sources(&[("bench", path, src)]));
        assert_eq!(rules(&out, "no-sleep"), vec![1]);
    }

    #[test]
    fn sleep_rule_requires_exact_path_tokens() {
        let out = lint("workload", "fn f() { std::thread::sleep(d); }\n");
        assert_eq!(rules(&out, "no-sleep"), vec![1]);
        // Exact token match: `my_thread::sleep` is not std's sleep.
        let out2 = lint("workload", "fn f() { my_thread::sleep(d); }\n");
        assert!(rules(&out2, "no-sleep").is_empty());
    }

    #[test]
    fn f32_rule_is_exact_and_carbon_only() {
        let out = lint("carbon", "fn f(x: f32) -> f64 { my_f32_thing(x) as f64 }\n");
        assert_eq!(rules(&out, "no-f32"), vec![1]);
        let out2 = lint("ftl", "fn f(x: f32) {}\n");
        assert!(rules(&out2, "no-f32").is_empty());
    }

    #[test]
    fn lossy_casts_banned_in_flash_and_ftl_only() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\nfn g(x: u64) -> u64 { x as u64 }\nfn h(x: u32) -> u8 { (x & 0xff) as u8 }\n";
        let out = lint("ftl", src);
        assert_eq!(rules(&out, "no-lossy-cast"), vec![1, 3]);
        let out2 = lint("carbon", src);
        assert!(rules(&out2, "no-lossy-cast").is_empty());
    }

    #[test]
    fn lossy_cast_suppression_needs_justification() {
        let src = "fn f(x: u64) -> u32 {\n    x as u32 // sos-lint: allow(no-lossy-cast, \"x is a block index < 2^20\")\n}\n";
        let out = lint("ftl", src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
        let bad = "fn f(x: u64) -> u32 {\n    x as u32 // sos-lint: allow(no-lossy-cast)\n}\n";
        let out2 = lint("ftl", bad);
        assert_eq!(rules(&out2, "bad-suppression"), vec![2]);
        assert_eq!(rules(&out2, "no-lossy-cast"), vec![2]);
    }

    #[test]
    fn pub_docs_rule_requires_doc_comment() {
        let src = "/// documented\npub fn good() {}\npub fn bad() {}\n";
        let out = lint("core", src);
        let docs: Vec<&LintFinding> = out
            .findings
            .iter()
            .filter(|f| f.rule == "pub-docs")
            .collect();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].line, 3);
        assert_eq!(docs[0].message, "undocumented public item: pub fn bad()");
    }

    #[test]
    fn attributes_between_doc_and_item_are_allowed() {
        let src = "/// documented\n#[derive(Debug)]\npub struct S;\n";
        let out = lint("core", src);
        assert!(rules(&out, "pub-docs").is_empty());
    }

    #[test]
    fn external_pub_mod_declaration_needs_no_doc() {
        let out = lint(
            "core",
            "pub mod device;\n/// inline\npub mod helpers { }\npub mod bare { }\n",
        );
        assert_eq!(rules(&out, "pub-docs"), vec![4]);
    }
}
