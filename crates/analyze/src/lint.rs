//! A repo-specific lint runner over the workspace sources.
//!
//! The build environment has no registry access, so instead of a parser
//! dependency this is a token-level scanner: sources are cleaned of
//! comments and string literals (so text inside them cannot trip a
//! rule), `#[cfg(test)]` regions are tracked by brace depth, and the
//! rules below run on what remains.
//!
//! Rules:
//!
//! * **no-unwrap** — `.unwrap()` / `.expect(` are banned in non-test
//!   code of the storage stack (`sos-flash`, `sos-ftl`, `sos-core`,
//!   `sos-hostfs`): the simulator must degrade, not abort.
//! * **no-f32** — carbon accounting (`sos-carbon`) must stay in `f64`;
//!   embodied-carbon sums are small differences of large numbers.
//! * **pub-docs** — every `pub` item in `sos-core` and `sos-ftl`
//!   carries a doc comment.
//! * **no-sleep** — simulated time is advanced explicitly
//!   (`advance_days`); `std::thread::sleep` never belongs in simulation
//!   code.
//! * **no-debug-macros** — `todo!()`, `unimplemented!()` and `dbg!()`
//!   are banned in non-test code across every crate: stubs must be
//!   gated or completed before merging, and debug prints never ship.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be free of `.unwrap()` / `.expect(`.
const NO_UNWRAP_CRATES: &[&str] = &["flash", "ftl", "core", "hostfs"];
/// Crates whose accounting paths must not use `f32`.
const NO_F32_CRATES: &[&str] = &["carbon"];
/// Crates whose public API must be fully documented.
const DOC_CRATES: &[&str] = &["core", "ftl"];

/// One lint rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// File the finding is in (relative to the workspace root).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A source file prepared for linting: raw lines for doc-comment
/// detection, cleaned lines (comments and literals blanked) for token
/// rules, and a per-line in-test flag.
struct PreparedFile {
    raw: Vec<String>,
    cleaned: Vec<String>,
    in_test: Vec<bool>,
}

/// Scanner states for source cleaning.
#[derive(Clone, Copy, PartialEq)]
enum ScanState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Blanks comments and string/char literals, preserving line structure.
/// Doc comments (`///`, `//!`) survive into the cleaned text so the
/// pub-docs rule can see them; their bodies are blanked like any other
/// comment.
fn clean_source(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut state = ScanState::Normal;
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut cleaned = String::with_capacity(chars.len());
        let mut i = 0usize;
        if state == ScanState::LineComment {
            state = ScanState::Normal;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                ScanState::Normal => match c {
                    '/' if next == Some('/') => {
                        // Preserve the doc-comment marker itself.
                        let third = chars.get(i + 2).copied();
                        if third == Some('/') || third == Some('!') {
                            cleaned.push_str("//");
                            cleaned.push(third.unwrap_or('/'));
                        }
                        state = ScanState::LineComment;
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = ScanState::BlockComment(1);
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = ScanState::Str;
                        cleaned.push(' ');
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        state = ScanState::RawStr(hashes);
                        for _ in 0..consumed {
                            cleaned.push(' ');
                        }
                        i += consumed;
                        continue;
                    }
                    '\'' => {
                        if is_char_literal(&chars, i) {
                            state = ScanState::Char;
                        }
                        cleaned.push(if is_char_literal(&chars, i) {
                            ' '
                        } else {
                            '\''
                        });
                    }
                    _ => cleaned.push(c),
                },
                ScanState::LineComment => {
                    i = chars.len();
                    continue;
                }
                ScanState::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            ScanState::Normal
                        } else {
                            ScanState::BlockComment(depth - 1)
                        };
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = ScanState::BlockComment(depth + 1);
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    cleaned.push(' ');
                }
                ScanState::Str => {
                    if c == '\\' {
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = ScanState::Normal;
                    }
                    cleaned.push(' ');
                }
                ScanState::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        state = ScanState::Normal;
                        for _ in 0..=hashes as usize {
                            cleaned.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                    cleaned.push(' ');
                }
                ScanState::Char => {
                    if c == '\\' {
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        state = ScanState::Normal;
                    }
                    cleaned.push(' ');
                }
            }
            i += 1;
        }
        out.push(cleaned);
    }
    out
}

/// Does `r"`, `r#"`, `br"`, … start at `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"') && (i == 0 || !is_ident_char(chars[i - 1]))
}

/// Returns (hash count, chars consumed) for a raw-string opener at `i`.
fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, j - i)
}

/// Does a closing `"` at `i` terminate a raw string with `hashes` hashes?
fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime at a `'` in position `i`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Marks each line as inside or outside a `#[cfg(test)]` region by
/// tracking brace depth from the attribute's item.
fn mark_test_regions(cleaned: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; cleaned.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    // (depth to return to, whether the region's opening brace was seen)
    let mut region: Option<(i64, bool)> = None;
    for (idx, line) in cleaned.iter().enumerate() {
        let trimmed = line.trim();
        if region.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending = true;
                in_test[idx] = true;
            } else if pending {
                in_test[idx] = true;
                if trimmed.starts_with("#[") {
                    // Further attributes between cfg(test) and the item.
                } else if !trimmed.is_empty() {
                    if line.contains('{') {
                        region = Some((depth, false));
                        pending = false;
                    } else if trimmed.ends_with(';') {
                        // Single-line item (e.g. a cfg-gated `use`).
                        pending = false;
                    }
                }
            }
        } else {
            in_test[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((_, opened)) = region.as_mut() {
                        *opened = true;
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some((return_depth, opened)) = region {
            in_test[idx] = true;
            if opened && depth <= return_depth {
                region = None;
            }
        }
    }
    in_test
}

fn prepare(source: &str) -> PreparedFile {
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let cleaned = clean_source(source);
    let in_test = mark_test_regions(&cleaned);
    PreparedFile {
        raw,
        cleaned,
        in_test,
    }
}

/// Does `needle` occur in `haystack` as a standalone token (not inside
/// a longer identifier)?
fn has_token(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let begin = start + pos;
        let end = begin + needle.len();
        let before_ok = begin == 0 || !is_ident_char(bytes[begin - 1] as char);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Does `line` invoke the macro `name` (`name!(…)`, `name![…]` or
/// `name!{…}`) as a standalone token?
fn has_macro(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(name) {
        let begin = start + pos;
        let end = begin + name.len();
        let before_ok = begin == 0 || !is_ident_char(bytes[begin - 1] as char);
        let bang = bytes.get(end) == Some(&b'!');
        let opener = matches!(bytes.get(end + 1), Some(b'(' | b'[' | b'{'));
        if before_ok && bang && opener {
            return true;
        }
        start = end;
    }
    false
}

/// Macros banned outside test code in every crate.
const BANNED_MACROS: &[&str] = &["todo", "unimplemented", "dbg"];

/// Keywords that begin a documentable `pub` item.
const PUB_ITEM_STARTS: &[&str] = &[
    "pub fn ",
    "pub async fn ",
    "pub unsafe fn ",
    "pub const fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub mod ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub union ",
];

/// Is the raw line at `idx` preceded by a doc comment (allowing
/// attribute lines in between)?
fn has_doc_comment(raw: &[String], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw[i].trim();
        if trimmed.starts_with("#[") || trimmed.starts_with(')') || trimmed.starts_with(']') {
            continue;
        }
        return trimmed.starts_with("///") || trimmed.starts_with("//!");
    }
    false
}

fn lint_file(relative: &Path, prepared: &PreparedFile, findings: &mut Vec<LintFinding>) {
    let crate_name = relative
        .components()
        .nth(1)
        .map(|c| c.as_os_str().to_string_lossy().to_string())
        .unwrap_or_default();
    let check_unwrap = NO_UNWRAP_CRATES.contains(&crate_name.as_str());
    let check_f32 = NO_F32_CRATES.contains(&crate_name.as_str());
    let check_docs = DOC_CRATES.contains(&crate_name.as_str());
    for (idx, line) in prepared.cleaned.iter().enumerate() {
        if prepared.in_test[idx] {
            continue;
        }
        let number = idx + 1;
        if check_unwrap {
            if line.contains(".unwrap()") {
                findings.push(LintFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "no-unwrap",
                    message: ".unwrap() in non-test storage-stack code".to_string(),
                });
            }
            if line.contains(".expect(") {
                findings.push(LintFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "no-unwrap",
                    message: ".expect() in non-test storage-stack code".to_string(),
                });
            }
        }
        if check_f32 && has_token(line, "f32") {
            findings.push(LintFinding {
                file: relative.to_path_buf(),
                line: number,
                rule: "no-f32",
                message: "f32 in carbon accounting (use f64)".to_string(),
            });
        }
        if line.contains("thread::sleep") {
            findings.push(LintFinding {
                file: relative.to_path_buf(),
                line: number,
                rule: "no-sleep",
                message: "std::thread::sleep in simulation code".to_string(),
            });
        }
        for name in BANNED_MACROS {
            if has_macro(line, name) {
                findings.push(LintFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "no-debug-macros",
                    message: format!("{name}!() in non-test code"),
                });
            }
        }
        if check_docs {
            let trimmed = line.trim_start();
            let is_pub_item = PUB_ITEM_STARTS
                .iter()
                .any(|start| trimmed.starts_with(start));
            // `pub mod name;` re-declares an external module whose docs
            // live as `//!` inside its own file; only inline modules
            // need a doc comment at the declaration.
            let external_mod = trimmed.starts_with("pub mod ") && trimmed.trim_end().ends_with(';');
            if is_pub_item && !external_mod && !has_doc_comment(&prepared.raw, idx) {
                findings.push(LintFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "pub-docs",
                    message: format!(
                        "undocumented public item: {}",
                        trimmed.split('{').next().unwrap_or(trimmed).trim()
                    ),
                });
            }
        }
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Runs every lint rule over `root/crates/*/src`, returning findings
/// sorted by file and line. An empty vector means the tree is clean.
pub fn run_lints(root: &Path) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return findings;
    };
    let mut crate_dirs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rust_files(&src, &mut files);
        for file in files {
            let Ok(source) = fs::read_to_string(&file) else {
                continue;
            };
            let relative = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            let prepared = prepare(&source);
            lint_file(&relative, &prepared, &mut findings);
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(src: &str) -> PreparedFile {
        prepare(src)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let p = prepared("let x = \".unwrap()\"; // .unwrap()\n");
        assert!(!p.cleaned[0].contains(".unwrap()"));
    }

    #[test]
    fn doc_markers_survive_cleaning() {
        let p = prepared("/// docs here\npub fn f() {}\n");
        assert!(p.cleaned[0].trim_start().starts_with("///"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let p = prepared(src);
        assert!(!p.in_test[0]);
        assert!(p.in_test[1] && p.in_test[2] && p.in_test[3] && p.in_test[4]);
        assert!(!p.in_test[5]);
    }

    #[test]
    fn unwrap_rule_fires_outside_tests_only() {
        let src =
            "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let p = prepared(src);
        let mut findings = Vec::new();
        lint_file(Path::new("crates/ftl/src/x.rs"), &p, &mut findings);
        let unwraps: Vec<_> = findings.iter().filter(|f| f.rule == "no-unwrap").collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn debug_macros_banned_outside_tests_in_any_crate() {
        let src = "fn live() { todo!(); }\nfn log(x: u32) { dbg!(x); }\nfn soon() { unimplemented!(\"later\") }\nfn fine() { my_todo!(); idbg!(1); }\n#[cfg(test)]\nmod tests {\n    fn t() { todo!() }\n}\n";
        let p = prepared(src);
        let mut findings = Vec::new();
        // `workload` is in no special crate list: the rule is global.
        lint_file(Path::new("crates/workload/src/x.rs"), &p, &mut findings);
        let macros: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "no-debug-macros")
            .collect();
        assert_eq!(macros.len(), 3, "{macros:?}");
        assert_eq!(
            macros.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn f32_token_matching_is_exact() {
        assert!(has_token("let x: f32 = 0.0;", "f32"));
        assert!(!has_token("let x = my_f32_thing;", "f32"));
        assert!(!has_token("let x: f64 = 0.0;", "f32"));
    }

    #[test]
    fn pub_docs_rule_requires_doc_comment() {
        let src = "/// documented\npub fn good() {}\npub fn bad() {}\n";
        let p = prepared(src);
        let mut findings = Vec::new();
        lint_file(Path::new("crates/core/src/x.rs"), &p, &mut findings);
        let docs: Vec<_> = findings.iter().filter(|f| f.rule == "pub-docs").collect();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].line, 3);
    }

    #[test]
    fn attributes_between_doc_and_item_are_allowed() {
        let src = "/// documented\n#[derive(Debug)]\npub struct S;\n";
        let p = prepared(src);
        let mut findings = Vec::new();
        lint_file(Path::new("crates/core/src/x.rs"), &p, &mut findings);
        assert!(findings.iter().all(|f| f.rule != "pub-docs"));
    }
}
