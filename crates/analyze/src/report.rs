//! Machine-readable lint/panic-path report: `sos-lint --format json`.
//!
//! The vendored `serde` is marker-traits only (the workspace has no
//! registry access), so the report types derive those markers for API
//! compatibility but carry their own JSON writer and a small strict
//! parser; [`JsonReport::from_json`] round-trips the writer's output
//! exactly, which a unit test pins down.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Report format version, bumped on breaking shape changes.
/// Version 2 added the determinism-pass counters
/// (`determinism_reachable_fns`, `allowlisted`).
pub const REPORT_VERSION: u32 = 2;

/// One finding in the JSON report — a lint-rule hit, a panic-path
/// construct, or a nondeterminism source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportFinding {
    /// Rule name (`no-unwrap`, `panic-path`, …).
    pub rule: String,
    /// File path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Call chain from an entry point (empty for plain lint findings).
    pub chain: Vec<String>,
}

/// Aggregate counters for the run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Non-test functions reachable from the panic-path entry points.
    pub reachable_fns: usize,
    /// Non-test functions reachable from the determinism entry points.
    pub determinism_reachable_fns: usize,
    /// Call sites that resolved to no workspace definition.
    pub unresolved_calls: usize,
    /// Findings silenced by justified suppressions.
    pub suppressed: usize,
    /// Clock/float-reduction hits inside the stderr-timing allowlist.
    pub allowlisted: usize,
    /// Entry points that resolved to a definition.
    pub entry_points: Vec<String>,
    /// Configured entry points with no matching definition.
    pub missing_entry_points: Vec<String>,
}

/// The whole report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonReport {
    /// Format version ([`REPORT_VERSION`]).
    pub version: u32,
    /// All findings, lint rules first, then panic-path.
    pub findings: Vec<ReportFinding>,
    /// Run counters.
    pub summary: ReportSummary,
}

impl JsonReport {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": {},", self.version);
        out.push_str("  \"findings\": [");
        for (i, finding) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"rule\": {},", quote(&finding.rule));
            let _ = writeln!(out, "      \"file\": {},", quote(&finding.file));
            let _ = writeln!(out, "      \"line\": {},", finding.line);
            let _ = writeln!(out, "      \"message\": {},", quote(&finding.message));
            let _ = writeln!(out, "      \"chain\": {}", string_array(&finding.chain));
            out.push_str("    }");
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"summary\": {\n");
        let s = &self.summary;
        let _ = writeln!(out, "    \"reachable_fns\": {},", s.reachable_fns);
        let _ = writeln!(
            out,
            "    \"determinism_reachable_fns\": {},",
            s.determinism_reachable_fns
        );
        let _ = writeln!(out, "    \"unresolved_calls\": {},", s.unresolved_calls);
        let _ = writeln!(out, "    \"suppressed\": {},", s.suppressed);
        let _ = writeln!(out, "    \"allowlisted\": {},", s.allowlisted);
        let _ = writeln!(
            out,
            "    \"entry_points\": {},",
            string_array(&s.entry_points)
        );
        let _ = writeln!(
            out,
            "    \"missing_entry_points\": {}",
            string_array(&s.missing_entry_points)
        );
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a report produced by [`JsonReport::to_json`]. Strict on
    /// shape: unknown or missing keys are errors, so format drift is
    /// caught by the round-trip test instead of silently tolerated.
    pub fn from_json(text: &str) -> Result<JsonReport, String> {
        let value = JsonValue::parse(text)?;
        let object = value.as_object()?;
        let mut report = JsonReport {
            version: 0,
            findings: Vec::new(),
            summary: ReportSummary::default(),
        };
        for (key, value) in object {
            match key.as_str() {
                "version" => report.version = value.as_usize()? as u32,
                "findings" => {
                    for entry in value.as_array()? {
                        report.findings.push(parse_finding(entry)?);
                    }
                }
                "summary" => report.summary = parse_summary(value)?,
                other => return Err(format!("unknown report key `{other}`")),
            }
        }
        Ok(report)
    }
}

fn parse_finding(value: &JsonValue) -> Result<ReportFinding, String> {
    let mut finding = ReportFinding {
        rule: String::new(),
        file: String::new(),
        line: 0,
        message: String::new(),
        chain: Vec::new(),
    };
    for (key, value) in value.as_object()? {
        match key.as_str() {
            "rule" => finding.rule = value.as_str()?.to_string(),
            "file" => finding.file = value.as_str()?.to_string(),
            "line" => finding.line = value.as_usize()?,
            "message" => finding.message = value.as_str()?.to_string(),
            "chain" => finding.chain = value.as_string_array()?,
            other => return Err(format!("unknown finding key `{other}`")),
        }
    }
    Ok(finding)
}

fn parse_summary(value: &JsonValue) -> Result<ReportSummary, String> {
    let mut summary = ReportSummary::default();
    for (key, value) in value.as_object()? {
        match key.as_str() {
            "reachable_fns" => summary.reachable_fns = value.as_usize()?,
            "determinism_reachable_fns" => summary.determinism_reachable_fns = value.as_usize()?,
            "unresolved_calls" => summary.unresolved_calls = value.as_usize()?,
            "suppressed" => summary.suppressed = value.as_usize()?,
            "allowlisted" => summary.allowlisted = value.as_usize()?,
            "entry_points" => summary.entry_points = value.as_string_array()?,
            "missing_entry_points" => summary.missing_entry_points = value.as_string_array()?,
            other => return Err(format!("unknown summary key `{other}`")),
        }
    }
    Ok(summary)
}

/// JSON string literal with escaping.
fn quote(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `["a", "b"]` on one line.
fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| quote(s)).collect();
    format!("[{}]", quoted.join(", "))
}

/// A minimal JSON value — just enough to read our own output (and any
/// semantically-equivalent reformatting of it).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Number(u64),
    Text(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn as_object(&self) -> Result<&[(String, JsonValue)], String> {
        match self {
            JsonValue::Object(fields) => Ok(fields),
            other => Err(format!("expected object, found {other:?}")),
        }
    }

    fn as_array(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(format!("expected array, found {other:?}")),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::Text(text) => Ok(text),
            other => Err(format!("expected string, found {other:?}")),
        }
    }

    fn as_usize(&self) -> Result<usize, String> {
        match self {
            JsonValue::Number(n) => Ok(*n as usize),
            other => Err(format!("expected number, found {other:?}")),
        }
    }

    fn as_string_array(&self) -> Result<Vec<String>, String> {
        self.as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Text(parse_string(bytes, pos)?)),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume `{`
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid utf-8 in string".to_string())
            }
            b'\\' => {
                let escape = bytes.get(*pos).copied();
                *pos += 1;
                match escape {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(hex.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            b => out.push(b),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonReport {
        JsonReport {
            version: REPORT_VERSION,
            findings: vec![
                ReportFinding {
                    rule: "panic-path".to_string(),
                    file: "crates/ftl/src/gc.rs".to_string(),
                    line: 42,
                    message: "indexing `blocks[…]` may panic \"out of bounds\"".to_string(),
                    chain: vec![
                        "Ftl::gc_once".to_string(),
                        "Ftl::relocate_valid".to_string(),
                    ],
                },
                ReportFinding {
                    rule: "no-unwrap".to_string(),
                    file: "crates/flash/src/device.rs".to_string(),
                    line: 7,
                    message: ".unwrap() in non-test code".to_string(),
                    chain: Vec::new(),
                },
            ],
            summary: ReportSummary {
                reachable_fns: 31,
                determinism_reachable_fns: 57,
                unresolved_calls: 120,
                suppressed: 9,
                allowlisted: 7,
                entry_points: vec!["Ftl::recover".to_string(), "HostFs::remount".to_string()],
                missing_entry_points: vec!["Ftl::gone".to_string()],
            },
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let json = report.to_json();
        let parsed = JsonReport::from_json(&json).expect("parse back");
        assert_eq!(parsed, report);
        // And the writer is deterministic.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = JsonReport {
            version: REPORT_VERSION,
            findings: Vec::new(),
            summary: ReportSummary::default(),
        };
        let parsed = JsonReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(parsed, report);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let json = "{\"version\": 1, \"bogus\": 2}";
        assert!(JsonReport::from_json(json).is_err());
    }

    #[test]
    fn escapes_survive() {
        let mut report = sample();
        report.findings[0].message = "tab\there \"quoted\" back\\slash\nnewline".to_string();
        let parsed = JsonReport::from_json(&report.to_json()).expect("parse back");
        assert_eq!(parsed, report);
    }
}
