//! A workspace-wide call graph over the parsed sources.
//!
//! Nodes are the function definitions the item extractor found; edges
//! come from scanning each body's token stream for call expressions:
//!
//! * `name(…)` — free-function calls,
//! * `path::name(…)` — path calls, with the segment before the name
//!   kept as a disambiguating qualifier (`Ftl::recover`, `Self::…`,
//!   `sos_flash::…`),
//! * `recv.name(…)` — method calls, with `self.name(…)` preferring the
//!   surrounding `impl`'s own method.
//!
//! Resolution is by identifier with qualifier/crate disambiguation, and
//! is deliberately an **over-approximation**: a method call whose
//! receiver type is unknown resolves to *every* workspace method of
//! that name. For the panic-freedom pass this is the sound direction —
//! a function is only proven panic-free if every function it *may*
//! call is. Calls that resolve to nothing inside the workspace (std,
//! vendored crates, enum constructors) are recorded per-node in
//! [`CallGraph::unresolved`] — explicitly kept, never silently dropped
//! — so a report can always say how much of the surface was beyond
//! static resolution.

use crate::parse::lexer::TokenKind;
use crate::parse::{SourceFile, Workspace};
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

/// How a call site was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `recv.name(…)`; `on_self` when the receiver is literally `self`.
    Method {
        /// The receiver token was `self`.
        on_self: bool,
    },
    /// `path::name(…)`.
    Path,
    /// Bare `name(…)`.
    Free,
}

/// One call expression found in a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called identifier.
    pub name: String,
    /// The path segment immediately before the name (`Ftl` in
    /// `Ftl::recover`), when present.
    pub qualifier: Option<String>,
    /// The call's syntactic shape.
    pub kind: CallKind,
    /// 1-based line of the called identifier.
    pub line: usize,
}

/// One function definition in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Node id — index into [`CallGraph::nodes`].
    pub id: usize,
    /// File the definition lives in, relative to the workspace root.
    pub file: PathBuf,
    /// The crate directory name.
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// The impl/trait type owning the function, if any.
    pub owner: Option<String>,
    /// 1-based signature line.
    pub line: usize,
    /// Test-only function.
    pub is_test: bool,
    /// Has a `self` receiver (callable with method syntax).
    pub has_self: bool,
    /// Index of the file in the workspace and of the item in the file.
    pub file_index: usize,
    /// Index of the item within the file's item list.
    pub item_index: usize,
}

impl FnNode {
    /// `Owner::name` or bare `name`.
    pub fn qualified_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The workspace call graph.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// All function definitions.
    pub nodes: Vec<FnNode>,
    /// Resolved callee node ids per node (deduplicated, sorted).
    pub edges: Vec<Vec<usize>>,
    /// Call sites that matched no workspace definition, per node.
    pub unresolved: Vec<Vec<CallSite>>,
}

/// Identifiers that look like calls syntactically but are control flow
/// or bindings.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "ref", "break",
    "continue", "else", "let", "mut", "where", "unsafe", "use", "pub", "impl", "fn", "dyn",
    "await", "yield", "box",
];

/// Is `text` a keyword that can directly precede `[`, `(`, `/` inside
/// an expression (so the previous "value" is not actually a value)?
pub(crate) fn is_expression_keyword(text: &str) -> bool {
    CALL_KEYWORDS.contains(&text) || matches!(text, "self" | "Self" | "super" | "crate")
}

/// Primitive type qualifiers: `u32::from(…)` and friends are std calls,
/// never workspace methods, so they must not fall back to name-only
/// resolution (which would fabricate edges into every `From` impl).
const PRIMITIVE_QUALIFIERS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char", "str",
];

impl CallGraph {
    /// Builds the graph for a parsed workspace.
    pub fn build(workspace: &Workspace) -> CallGraph {
        let mut nodes = Vec::new();
        for (file_index, file) in workspace.files.iter().enumerate() {
            for (item_index, item) in file.items.fns.iter().enumerate() {
                nodes.push(FnNode {
                    id: nodes.len(),
                    file: file.path.clone(),
                    crate_name: file.crate_name.clone(),
                    name: item.name.clone(),
                    owner: item.owner.clone(),
                    line: item.line,
                    is_test: item.is_test,
                    has_self: item.has_self,
                    file_index,
                    item_index,
                });
            }
        }

        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_owner_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for node in &nodes {
            by_name.entry(&node.name).or_default().push(node.id);
            if let Some(owner) = &node.owner {
                by_owner_name
                    .entry((owner.as_str(), node.name.as_str()))
                    .or_default()
                    .push(node.id);
                // Only fns with a `self` receiver can be the target of
                // an unknown-receiver method call.
                if node.has_self {
                    methods_by_name.entry(&node.name).or_default().push(node.id);
                }
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut unresolved: Vec<Vec<CallSite>> = vec![Vec::new(); nodes.len()];
        for node in 0..nodes.len() {
            let file = &workspace.files[nodes[node].file_index];
            let Some((body_start, body_end)) = file.items.fns[nodes[node].item_index].body else {
                continue;
            };
            let calls = extract_calls(file, body_start, body_end);
            let mut resolved: BTreeSet<usize> = BTreeSet::new();
            for call in calls {
                let candidates = resolve(
                    &call,
                    &nodes[node],
                    &nodes,
                    &by_name,
                    &by_owner_name,
                    &methods_by_name,
                );
                // A non-test function must be provable without assuming
                // its callees are test helpers.
                let live: Vec<usize> = candidates
                    .into_iter()
                    .filter(|&candidate| nodes[node].is_test || !nodes[candidate].is_test)
                    .collect();
                if live.is_empty() {
                    unresolved[node].push(call);
                } else {
                    resolved.extend(live);
                }
            }
            edges[node] = resolved.into_iter().collect();
        }
        CallGraph {
            nodes,
            edges,
            unresolved,
        }
    }

    /// Finds node ids by optional owner and name.
    pub fn find(&self, owner: Option<&str>, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.name == name && (owner.is_none() || n.owner.as_deref() == owner))
            .map(|n| n.id)
            .collect()
    }

    /// Total number of unresolved call sites across the graph.
    pub fn unresolved_total(&self) -> usize {
        self.unresolved.iter().map(Vec::len).sum()
    }
}

/// Scans a body token range for call expressions.
pub(crate) fn extract_calls(file: &SourceFile, start: usize, end: usize) -> Vec<CallSite> {
    let source = &file.source;
    let tokens = &file.tokens;
    // Indices of the body's non-comment tokens.
    let idx: Vec<usize> = (start..=end.min(tokens.len().saturating_sub(1)))
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text_at = |k: usize| tokens[idx[k]].text(source);
    let mut calls = Vec::new();
    for k in 0..idx.len() {
        let token = &tokens[idx[k]];
        if token.kind != TokenKind::Ident {
            continue;
        }
        let name = token.text(source);
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let Some(&next_index) = idx.get(k + 1) else {
            continue;
        };
        if tokens[next_index].kind != TokenKind::Punct || tokens[next_index].text(source) != "(" {
            continue;
        }
        // `name!(…)` is a macro; `fn name(…)` is a definition.
        let prev = k.checked_sub(1).map(&text_at);
        if prev == Some("fn") || prev == Some("!") {
            continue;
        }
        let (kind, qualifier) = match prev {
            Some(".") => {
                let receiver = k.checked_sub(2).map(&text_at);
                (
                    CallKind::Method {
                        on_self: receiver == Some("self"),
                    },
                    None,
                )
            }
            Some("::") => {
                let qualifier = k.checked_sub(2).and_then(|q| {
                    (tokens[idx[q]].kind == TokenKind::Ident).then(|| text_at(q).to_string())
                });
                (CallKind::Path, qualifier)
            }
            _ => (CallKind::Free, None),
        };
        calls.push(CallSite {
            name: name.to_string(),
            qualifier,
            kind,
            line: token.line,
        });
    }
    calls
}

/// Resolves a call site to candidate node ids (empty = unresolved).
fn resolve(
    call: &CallSite,
    caller: &FnNode,
    nodes: &[FnNode],
    by_name: &HashMap<&str, Vec<usize>>,
    by_owner_name: &HashMap<(&str, &str), Vec<usize>>,
    methods_by_name: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let name = call.name.as_str();
    match call.kind {
        CallKind::Method { on_self } => {
            if on_self {
                if let Some(owner) = &caller.owner {
                    if let Some(ids) = by_owner_name.get(&(owner.as_str(), name)) {
                        return ids.clone();
                    }
                }
            }
            methods_by_name.get(name).cloned().unwrap_or_default()
        }
        CallKind::Path => {
            let Some(q) = call.qualifier.as_deref() else {
                // No usable qualifier segment (e.g. `<T as Trait>::f`):
                // over-approximate by name.
                return by_name.get(name).cloned().unwrap_or_default();
            };
            if PRIMITIVE_QUALIFIERS.contains(&q) {
                return Vec::new(); // std primitive method, external
            }
            let owner = if q == "Self" {
                caller.owner.as_deref()
            } else {
                Some(q)
            };
            if let Some(owner) = owner {
                if let Some(ids) = by_owner_name.get(&(owner, name)) {
                    return ids.clone();
                }
            }
            // `sos_flash::foo(…)` → definitions within that crate.
            if let Some(crate_name) = q.strip_prefix("sos_") {
                let scoped: Vec<usize> = by_name
                    .get(name)
                    .into_iter()
                    .flatten()
                    .copied()
                    .filter(|&id| nodes[id].crate_name == crate_name)
                    .collect();
                if !scoped.is_empty() {
                    return scoped;
                }
            }
            if q.starts_with(|c: char| c.is_ascii_uppercase()) {
                // `VecDeque::new(…)` — a type with no workspace method
                // of that name is external. Falling back to name-only
                // here would fabricate an edge into every workspace
                // `new`, making everything reachable from everything.
                return Vec::new();
            }
            // `module::helper(…)` — a lowercase path segment qualifies
            // a free function; match workspace free fns by name.
            by_name
                .get(name)
                .into_iter()
                .flatten()
                .copied()
                .filter(|&id| nodes[id].owner.is_none())
                .collect()
        }
        CallKind::Free => {
            // Prefer same-crate definitions — `use`-imported free fns
            // from other crates still resolve via the fallback.
            let all = by_name.get(name).cloned().unwrap_or_default();
            let local: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&id| nodes[id].crate_name == caller.crate_name)
                .collect();
            if local.is_empty() {
                all
            } else {
                local
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Workspace;

    fn graph(sources: &[(&str, &str, &str)]) -> CallGraph {
        CallGraph::build(&Workspace::from_sources(sources))
    }

    fn edge_names(g: &CallGraph, owner: Option<&str>, name: &str) -> Vec<String> {
        let ids = g.find(owner, name);
        assert_eq!(ids.len(), 1, "{owner:?}::{name} not unique");
        g.edges[ids[0]]
            .iter()
            .map(|&id| g.nodes[id].qualified_name())
            .collect()
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl() {
        let g = graph(&[(
            "ftl",
            "crates/ftl/src/lib.rs",
            "struct Ftl;\nimpl Ftl {\n    fn recover(&mut self) { self.rebuild(); }\n    fn rebuild(&mut self) {}\n}\n",
        )]);
        assert_eq!(edge_names(&g, Some("Ftl"), "recover"), vec!["Ftl::rebuild"]);
    }

    #[test]
    fn edges_cross_impl_blocks_and_files() {
        // `recover` lives in one impl block (recovery.rs), `recycle` in
        // another (gc.rs) — the same-type call must still resolve.
        let g = graph(&[
            (
                "ftl",
                "crates/ftl/src/recovery.rs",
                "impl Ftl {\n    fn recover(&mut self) { self.recycle(3); }\n}\n",
            ),
            (
                "ftl",
                "crates/ftl/src/gc.rs",
                "impl Ftl {\n    fn recycle(&mut self, b: u64) { let _ = b; }\n}\n",
            ),
        ]);
        assert_eq!(edge_names(&g, Some("Ftl"), "recover"), vec!["Ftl::recycle"]);
    }

    #[test]
    fn unknown_receiver_over_approximates() {
        let g = graph(&[(
            "core",
            "crates/core/src/lib.rs",
            "impl A {\n    fn go(&self, d: D) { d.step(); }\n    fn step(&self) {}\n}\nimpl B {\n    fn step(&self) {}\n}\n",
        )]);
        let mut got = edge_names(&g, Some("A"), "go");
        got.sort();
        assert_eq!(got, vec!["A::step", "B::step"]);
    }

    #[test]
    fn path_qualifier_disambiguates() {
        let g = graph(&[(
            "ftl",
            "crates/ftl/src/lib.rs",
            "impl Ftl {\n    fn top() { Ftl::inner(); Other::inner(); }\n    fn inner() {}\n}\nimpl Other {\n    fn inner() {}\n}\n",
        )]);
        let mut got = edge_names(&g, None, "top");
        got.sort();
        assert_eq!(got, vec!["Ftl::inner", "Other::inner"]);
    }

    #[test]
    fn unresolved_calls_are_recorded_not_dropped() {
        let g = graph(&[(
            "ftl",
            "crates/ftl/src/lib.rs",
            "fn f(v: Vec<u64>) { v.push(1); external(); let _ = Some(3); }\n",
        )]);
        let ids = g.find(None, "f");
        let unresolved: Vec<&str> = g.unresolved[ids[0]]
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(unresolved, vec!["push", "external", "Some"]);
        assert_eq!(g.unresolved_total(), 3);
    }

    #[test]
    fn macros_and_nested_fn_defs_are_not_calls() {
        let g = graph(&[(
            "ftl",
            "crates/ftl/src/lib.rs",
            "fn f() {\n    println!(\"x\");\n    fn nested() {}\n    nested();\n}\n",
        )]);
        let ids = g.find(None, "f");
        assert_eq!(
            g.edges[ids[0]]
                .iter()
                .map(|&id| g.nodes[id].name.clone())
                .collect::<Vec<_>>(),
            vec!["nested"]
        );
        assert!(g.unresolved[ids[0]].is_empty());
    }

    #[test]
    fn non_test_callers_skip_test_helpers() {
        let g = graph(&[(
            "ftl",
            "crates/ftl/src/lib.rs",
            "fn live() { helper(); }\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    fn t() { helper(); }\n}\n",
        )]);
        let live = g.find(None, "live");
        assert!(g.edges[live[0]].is_empty());
        assert_eq!(g.unresolved[live[0]].len(), 1);
        let t = g.find(None, "t");
        assert_eq!(g.edges[t[0]].len(), 1);
    }

    #[test]
    fn primitive_qualifiers_never_fabricate_edges() {
        let g = graph(&[(
            "flash",
            "crates/flash/src/lib.rs",
            "impl Oob {\n    fn from(x: u8) -> Oob { Oob }\n}\nfn f(b: u8) -> u32 { u32::from(b) }\n",
        )]);
        let ids = g.find(None, "f");
        assert!(g.edges[ids[0]].is_empty(), "u32::from must stay external");
        assert_eq!(g.unresolved[ids[0]].len(), 1);
    }
}
