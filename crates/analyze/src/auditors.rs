//! Concrete invariant auditors over FTL and SOS-device snapshots.
//!
//! Each auditor checks one invariant family and returns structured
//! [`Violation`]s. The within-snapshot auditors are stateless; wear
//! monotonicity and GC conservation compare successive snapshots and
//! therefore keep history between calls.

use crate::{StateAuditor, Violation};
use sos_core::CoreState;
use sos_core::Partition;
use sos_flash::CellDensity;
use sos_ftl::{FtlState, SlotSnapshot};
use std::collections::{HashMap, HashSet};

/// Checks that the L2P map is injective and consistent: every mapped
/// LPN points to a distinct, in-range, *programmed* physical page, and
/// the owning block's reverse map points back at the same LPN.
#[derive(Debug, Default)]
pub struct L2pInjectivityAuditor;

impl StateAuditor<FtlState> for L2pInjectivityAuditor {
    fn name(&self) -> &'static str {
        "l2p-injectivity"
    }

    // sos-lint: allow(panic-path, "snapshot vectors are sized from the same geometry the offsets were derived from")
    fn audit(&mut self, state: &FtlState) -> Vec<Violation> {
        let mut violations = Vec::new();
        let mut owners: HashMap<u64, u64> = HashMap::new();
        for (lpn, slot) in state.l2p.iter().enumerate() {
            let lpn = lpn as u64;
            let SlotSnapshot::Mapped(location) = *slot else {
                continue;
            };
            if let Some(&other) = owners.get(&location) {
                violations.push(Violation::DuplicateMapping {
                    lpn_a: other,
                    lpn_b: lpn,
                    location,
                });
                continue;
            }
            owners.insert(location, lpn);
            let (block, offset) = state.split_page(location);
            let Some(map) = state.blocks.get(block as usize) else {
                violations.push(Violation::MappingOutOfRange { lpn, location });
                continue;
            };
            if offset as usize >= map.lpns.len() {
                violations.push(Violation::MappingOutOfRange { lpn, location });
                continue;
            }
            // The device must actually hold data at the mapped page; a
            // mapping into an erased page is stale. Report only the most
            // specific violation per LPN.
            let programmed = state
                .device
                .get(block as usize)
                .is_some_and(|snapshot| snapshot.programmed.binary_search(&offset).is_ok());
            if !programmed {
                violations.push(Violation::MappedPageNotProgrammed { lpn, location });
                continue;
            }
            let reverse = map.lpns[offset as usize];
            if reverse != Some(lpn) {
                violations.push(Violation::ReverseMapMismatch {
                    block,
                    offset,
                    forward: Some(lpn),
                    reverse,
                });
            }
        }
        violations
    }
}

/// Checks that every block's cached valid-page count equals the number
/// of LPNs its reverse map actually holds.
#[derive(Debug, Default)]
pub struct ValidCountAuditor;

impl StateAuditor<FtlState> for ValidCountAuditor {
    fn name(&self) -> &'static str {
        "valid-count"
    }

    fn audit(&mut self, state: &FtlState) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (block, map) in state.blocks.iter().enumerate() {
            let actual = map.lpns.iter().filter(|slot| slot.is_some()).count() as u32;
            if actual != map.valid {
                violations.push(Violation::ValidCountMismatch {
                    block: block as u64,
                    recorded: map.valid,
                    actual,
                });
            }
        }
        violations
    }
}

/// Checks NAND program discipline from the device's own bookkeeping:
/// within each block, the programmed pages are exactly the prefix
/// `[0, next_page)` — no holes (missed erase accounting) and no pages
/// at or past the write pointer (double program) — and the write
/// pointer never exceeds the block's usable pages.
#[derive(Debug, Default)]
pub struct EraseDisciplineAuditor;

impl StateAuditor<FtlState> for EraseDisciplineAuditor {
    fn name(&self) -> &'static str {
        "erase-discipline"
    }

    fn audit(&mut self, state: &FtlState) -> Vec<Violation> {
        let mut violations = Vec::new();
        for snapshot in &state.device {
            if snapshot.next_page > snapshot.usable_pages {
                violations.push(Violation::WritePointerOverflow {
                    block: snapshot.block,
                    next_page: snapshot.next_page,
                    usable: snapshot.usable_pages,
                });
            }
            let programmed_pages: HashSet<u32> = snapshot.programmed.iter().copied().collect();
            for page in 0..snapshot.next_page {
                if !programmed_pages.contains(&page) {
                    violations.push(Violation::ProgrammedPrefixHole {
                        block: snapshot.block,
                        page,
                    });
                }
            }
            for &page in &snapshot.programmed {
                if page >= snapshot.next_page {
                    violations.push(Violation::ProgramBeyondWritePointer {
                        block: snapshot.block,
                        page,
                        next_page: snapshot.next_page,
                    });
                }
            }
        }
        violations
    }
}

/// Checks that wear only accumulates: per-block program/erase counts
/// never decrease between snapshots, and retired blocks stay retired.
#[derive(Debug, Default)]
pub struct WearMonotonicityAuditor {
    last: Option<Vec<(u32, bool)>>,
}

impl StateAuditor<FtlState> for WearMonotonicityAuditor {
    fn name(&self) -> &'static str {
        "wear-monotonicity"
    }

    fn audit(&mut self, state: &FtlState) -> Vec<Violation> {
        let mut violations = Vec::new();
        let current: Vec<(u32, bool)> = state
            .device
            .iter()
            .map(|snapshot| (snapshot.pec, snapshot.bad))
            .collect();
        if let Some(previous) = &self.last {
            for (block, (&(prev_pec, prev_bad), &(pec, bad))) in
                previous.iter().zip(&current).enumerate()
            {
                if pec < prev_pec {
                    violations.push(Violation::WearRollback {
                        block: block as u64,
                        previous: prev_pec,
                        current: pec,
                    });
                }
                if prev_bad && !bad {
                    violations.push(Violation::RetiredBlockRevived {
                        block: block as u64,
                    });
                }
            }
        }
        self.last = Some(current);
        violations
    }
}

/// Checks that garbage collection conserves live data: between
/// snapshots, the count of mapped + lost logical pages may only drop by
/// as much as the host trimmed.
#[derive(Debug, Default)]
pub struct GcConservationAuditor {
    last: Option<(u64, u64)>,
}

impl StateAuditor<FtlState> for GcConservationAuditor {
    fn name(&self) -> &'static str {
        "gc-conservation"
    }

    fn audit(&mut self, state: &FtlState) -> Vec<Violation> {
        let mut violations = Vec::new();
        let live = state.mapped_pages() + state.lost_pages();
        let trims = state.stats.trims;
        if let Some((prev_live, prev_trims)) = self.last {
            let trimmed = trims.saturating_sub(prev_trims);
            if live + trimmed < prev_live {
                violations.push(Violation::LiveDataShrank {
                    before: prev_live,
                    after: live,
                    trims: trimmed,
                });
            }
        }
        self.last = Some((live, trims));
        violations
    }
}

/// All FTL-level auditors bundled for one partition.
#[derive(Debug, Default)]
pub struct FtlAuditorSet {
    injectivity: L2pInjectivityAuditor,
    valid_count: ValidCountAuditor,
    erase: EraseDisciplineAuditor,
    wear: WearMonotonicityAuditor,
    conservation: GcConservationAuditor,
}

impl FtlAuditorSet {
    /// A fresh set with no snapshot history.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateAuditor<FtlState> for FtlAuditorSet {
    fn name(&self) -> &'static str {
        "ftl"
    }

    fn audit(&mut self, state: &FtlState) -> Vec<Violation> {
        let mut violations = self.injectivity.audit(state);
        violations.extend(self.valid_count.audit(state));
        violations.extend(self.erase.audit(state));
        violations.extend(self.wear.audit(state));
        violations.extend(self.conservation.audit(state));
        violations
    }
}

/// Checks the SOS partition rules (§4.2/§4.4): the SYS partition runs
/// pseudo-QLC with every live data stripe covered by parity, objects
/// never sit in the reserved parity range, and the SPARE partition sits
/// on physical PLC (possibly resuscitated to a lower pseudo-density).
#[derive(Debug, Default)]
pub struct PlacementAuditor;

impl StateAuditor<CoreState> for PlacementAuditor {
    fn name(&self) -> &'static str {
        "placement"
    }

    // sos-lint: allow(panic-path, "lpns are filtered against the snapshot's l2p length before use and stripe_width is validated nonzero at mount")
    fn audit(&mut self, state: &CoreState) -> Vec<Violation> {
        let mut violations = Vec::new();
        let sys_mode = state.sys.mode;
        if sys_mode.logical != CellDensity::Qlc
            || sys_mode.physical.bits_per_cell() <= sys_mode.logical.bits_per_cell()
        {
            violations.push(Violation::PartitionModeMismatch {
                partition: "sys",
                detail: format!("expected pseudo-QLC, found {sys_mode:?}"),
            });
        }
        let spare_mode = state.spare.mode;
        if spare_mode.physical != CellDensity::Plc {
            violations.push(Violation::PartitionModeMismatch {
                partition: "spare",
                detail: format!("expected physical PLC cells, found {spare_mode:?}"),
            });
        }
        // Resuscitation may step individual SPARE blocks down the
        // density ladder, but never up past the physical density.
        for snapshot in &state.spare.device {
            if snapshot.mode.logical.bits_per_cell() > snapshot.mode.physical.bits_per_cell() {
                violations.push(Violation::PartitionModeMismatch {
                    partition: "spare",
                    detail: format!(
                        "block {} over-programmed: {:?}",
                        snapshot.block, snapshot.mode
                    ),
                });
            }
        }
        let mut parity_checked: HashSet<u64> = HashSet::new();
        for object in &state.objects {
            match object.partition {
                Partition::Sys => {
                    for &lpn in &object.lpns {
                        if lpn >= state.sys.logical_pages {
                            violations.push(Violation::ObjectLpnOutOfRange {
                                id: object.id,
                                lpn,
                                capacity: state.sys.logical_pages,
                            });
                            continue;
                        }
                        if lpn >= state.parity_base {
                            violations.push(Violation::SysObjectInParityRange {
                                id: object.id,
                                lpn,
                                parity_base: state.parity_base,
                            });
                            continue;
                        }
                        // Parity coverage: every stripe with live data
                        // must have a mapped parity page.
                        if !matches!(state.sys.l2p[lpn as usize], SlotSnapshot::Mapped(_)) {
                            continue;
                        }
                        let stripe = lpn / state.stripe_width;
                        if !parity_checked.insert(stripe) {
                            continue;
                        }
                        let parity_lpn = state.parity_base + stripe;
                        let covered = state
                            .sys
                            .l2p
                            .get(parity_lpn as usize)
                            .is_some_and(|slot| matches!(slot, SlotSnapshot::Mapped(_)));
                        if !covered {
                            violations.push(Violation::SysParityMissing { stripe, parity_lpn });
                        }
                    }
                }
                Partition::Spare => {
                    for &lpn in &object.lpns {
                        if lpn >= state.spare.logical_pages {
                            violations.push(Violation::ObjectLpnOutOfRange {
                                id: object.id,
                                lpn,
                                capacity: state.spare.logical_pages,
                            });
                        }
                    }
                }
            }
        }
        violations
    }
}
