//! Audited harnesses: per-operation FTL auditing for tests and
//! interval auditing for long simulations.
//!
//! [`AuditedFtl`] wraps an [`Ftl`] and re-audits the full state after
//! every mutating operation; with the `audit` feature disabled the
//! wrapper compiles down to plain forwarding. [`run_audited_days`]
//! drives an [`SosController`] for a number of simulated days, auditing
//! the whole device at a configurable day interval — cheap enough to
//! leave on in long experiments.

use crate::auditors::{FtlAuditorSet, PlacementAuditor};
use crate::{StateAuditor, Violation};
use sos_classify::Classifier;
use sos_core::{CoreState, Partition, RemountReport, SosController, SosDevice};
use sos_flash::{FaultAt, FaultKind, FaultPlan, FlashError};
use sos_ftl::{Ftl, FtlError, ReadResult, ScrubReport, SlotSnapshot, StreamId};

/// A violation tagged with the state it was found in (`"sys"`,
/// `"spare"`, `"core"`, or `"ftl"` for a bare [`AuditedFtl`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// Which snapshot the violation was found in.
    pub source: &'static str,
    /// The violation itself.
    pub violation: Violation,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.source, self.violation)
    }
}

/// All auditors needed for a whole SOS device: one FTL set per
/// partition plus the placement/parity rules.
#[derive(Debug, Default)]
pub struct CoreAuditorSet {
    sys: FtlAuditorSet,
    spare: FtlAuditorSet,
    placement: PlacementAuditor,
}

impl CoreAuditorSet {
    /// A fresh set with no snapshot history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Audits one device snapshot, tagging violations by partition.
    pub fn audit(&mut self, state: &CoreState) -> Vec<AuditFinding> {
        let mut findings: Vec<AuditFinding> = self
            .sys
            .audit(&state.sys)
            .into_iter()
            .map(|violation| AuditFinding {
                source: "sys",
                violation,
            })
            .collect();
        findings.extend(
            self.spare
                .audit(&state.spare)
                .into_iter()
                .map(|violation| AuditFinding {
                    source: "spare",
                    violation,
                }),
        );
        findings.extend(
            self.placement
                .audit(state)
                .into_iter()
                .map(|violation| AuditFinding {
                    source: "core",
                    violation,
                }),
        );
        findings
    }
}

/// An FTL wrapper that audits the complete state after every operation.
///
/// Intended for tests: violations accumulate in [`AuditedFtl::violations`]
/// instead of panicking, so a test decides how strictly to react. With
/// the `audit` feature disabled the per-operation checks vanish.
#[derive(Debug)]
pub struct AuditedFtl {
    ftl: Ftl,
    #[cfg(feature = "audit")]
    auditors: FtlAuditorSet,
    /// Violations found so far, in operation order.
    pub violations: Vec<Violation>,
}

impl AuditedFtl {
    /// Wraps an FTL, auditing its (clean) initial state.
    pub fn new(ftl: Ftl) -> Self {
        let mut audited = AuditedFtl {
            ftl,
            #[cfg(feature = "audit")]
            auditors: FtlAuditorSet::new(),
            violations: Vec::new(),
        };
        audited.check();
        audited
    }

    fn check(&mut self) {
        #[cfg(feature = "audit")]
        {
            let state = self.ftl.audit_snapshot();
            self.violations.extend(self.auditors.audit(&state));
        }
    }

    /// Read access to the wrapped FTL.
    pub fn inner(&self) -> &Ftl {
        &self.ftl
    }

    /// Unwraps back into the plain FTL, discarding audit state.
    pub fn into_inner(self) -> Ftl {
        self.ftl
    }

    /// Drains the violations collected so far.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// [`Ftl::write`], followed by a full audit.
    pub fn write(&mut self, lpn: u64, data: &[u8]) -> Result<f64, FtlError> {
        let result = self.ftl.write(lpn, data);
        self.check();
        result
    }

    /// [`Ftl::write_stream`], followed by a full audit.
    pub fn write_stream(
        &mut self,
        lpn: u64,
        data: &[u8],
        stream: StreamId,
    ) -> Result<f64, FtlError> {
        let result = self.ftl.write_stream(lpn, data, stream);
        self.check();
        result
    }

    /// [`Ftl::read`], followed by a full audit (reads mutate statistics
    /// and can surface lost data).
    pub fn read(&mut self, lpn: u64) -> Result<ReadResult, FtlError> {
        let result = self.ftl.read(lpn);
        self.check();
        result
    }

    /// [`Ftl::trim`], followed by a full audit.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        let result = self.ftl.trim(lpn);
        self.check();
        result
    }

    /// [`Ftl::scrub`], followed by a full audit.
    pub fn scrub(&mut self) -> Result<ScrubReport, FtlError> {
        let result = self.ftl.scrub();
        self.check();
        result
    }

    /// [`Ftl::advance_days`] (no audit needed: time alone moves no
    /// mapping state, only the error clock).
    pub fn advance_days(&mut self, days: f64) {
        self.ftl.advance_days(days);
    }
}

/// Runs an SOS-device simulation for `days`, auditing the whole device
/// every `interval_days` (0 audits only at the end). Returns all tagged
/// findings; a healthy run returns an empty vector.
///
/// The run is fully deterministic: every source of randomness is the
/// seed baked into the controller's device and workload configuration
/// at construction time, so re-building the controller from the same
/// seeds replays the identical simulation. Bench binaries wire those
/// seeds to [`seed_from_env`] so any run can be reproduced from the
/// command line.
pub fn run_audited_days<C: Classifier>(
    controller: &mut SosController<SosDevice, C>,
    days: u64,
    interval_days: u64,
) -> Vec<AuditFinding> {
    let mut auditors = CoreAuditorSet::new();
    let mut findings = Vec::new();
    for day in 1..=days {
        controller.run_day();
        if interval_days != 0 && day.is_multiple_of(interval_days) {
            findings.extend(auditors.audit(&controller.device.audit_snapshot()));
        }
    }
    if interval_days == 0 || days == 0 || !days.is_multiple_of(interval_days) {
        findings.extend(auditors.audit(&controller.device.audit_snapshot()));
    }
    findings
}

/// Checks that a crash-and-remount cycle rebuilt the device to exactly
/// the pre-crash state minus the *declared* crash window.
///
/// Three rules, compared across the pre-crash snapshot, the
/// post-recovery snapshot, and the [`RemountReport`]:
///
/// 1. **Directory stability** — every object in the pre-crash directory
///    is still present with the same partition, placement, and length
///    (host metadata is modelled as crash-safe).
/// 2. **Repair or declare** — every page the directory references is
///    either mapped after recovery (intact or parity-rebuilt) or listed
///    in the report's `sys_lost`/`spare_lost`. Silent loss is a
///    violation.
/// 3. **Torn pages stay dead** — a page left torn by the power cut (bad
///    OOB CRC) must never be mapped as valid data afterwards, unless
///    its block was erased and legitimately reprogrammed in the
///    meantime (detected via the block's program/erase count).
#[derive(Debug, Default)]
pub struct RecoveryAuditor;

impl RecoveryAuditor {
    /// A short, stable name for reports (mirrors [`StateAuditor`]).
    pub fn name(&self) -> &'static str {
        "recovery"
    }

    /// Audits one crash-and-remount cycle.
    pub fn audit_remount(
        before: &CoreState,
        after: &CoreState,
        report: &RemountReport,
    ) -> Vec<Violation> {
        let mut violations = Vec::new();

        // Rule 1: the directory survives the crash unchanged.
        for pre in &before.objects {
            match after.objects.iter().find(|post| post.id == pre.id) {
                None => violations.push(Violation::RemountObjectMismatch {
                    id: pre.id,
                    detail: "object vanished across remount".to_string(),
                }),
                Some(post) => {
                    if post.partition != pre.partition
                        || post.lpns != pre.lpns
                        || post.len != pre.len
                    {
                        violations.push(Violation::RemountObjectMismatch {
                            id: pre.id,
                            detail: format!(
                                "placement changed: {:?}/{} pages/{} bytes -> {:?}/{} pages/{} bytes",
                                pre.partition,
                                pre.lpns.len(),
                                pre.len,
                                post.partition,
                                post.lpns.len(),
                                post.len
                            ),
                        });
                    }
                }
            }
        }

        // Rule 2: every referenced page is recovered or declared lost.
        for object in &after.objects {
            let (state, lost, partition) = match object.partition {
                Partition::Sys => (&after.sys, &report.sys_lost, "sys"),
                Partition::Spare => (&after.spare, &report.spare_lost, "spare"),
            };
            for &lpn in &object.lpns {
                let mapped = matches!(state.l2p.get(lpn as usize), Some(SlotSnapshot::Mapped(_)));
                let declared = lost.iter().any(|&(id, l)| id == object.id && l == lpn);
                if !mapped && !declared {
                    violations.push(Violation::UnreportedCrashLoss {
                        partition,
                        id: object.id,
                        lpn,
                    });
                }
            }
        }

        // Rule 3: torn pages never resurface as valid data. A torn
        // location may be legitimately remapped only after its block is
        // erased and reprogrammed (repair/parity writes during the
        // remount can trigger GC), which shows up as a PEC increase.
        for (partition, pre, post, recovery) in [
            ("sys", &before.sys, &after.sys, &report.sys),
            ("spare", &before.spare, &after.spare, &report.spare),
        ] {
            for &torn in &recovery.torn_pages {
                let block = torn / post.pages_per_block as u64;
                let pec = |state: &sos_ftl::FtlState| {
                    state
                        .device
                        .iter()
                        .find(|snapshot| snapshot.block == block)
                        .map(|snapshot| snapshot.pec)
                };
                if pec(pre) != pec(post) {
                    continue;
                }
                for (lpn, slot) in post.l2p.iter().enumerate() {
                    if *slot == SlotSnapshot::Mapped(torn) {
                        violations.push(Violation::TornPageResurfaced {
                            partition,
                            location: torn,
                            lpn: lpn as u64,
                        });
                    }
                }
            }
        }

        violations
    }
}

/// Aggregate outcome of a crash sweep ([`run_crashy_days`]).
#[derive(Debug, Clone, Default)]
pub struct CrashSweepReport {
    /// Simulated days driven.
    pub days: u64,
    /// Power cuts that fired (each followed by a full remount).
    pub crashes: u64,
    /// Checkpoints taken between days.
    pub checkpoints: u64,
    /// Every auditor finding, tagged with its source snapshot
    /// (`"recovery"` for the remount checks). Empty on a healthy sweep.
    pub findings: Vec<AuditFinding>,
    /// SYS pages lost in crash windows and rebuilt from stripe parity.
    pub sys_repaired: u64,
    /// SYS pages lost beyond parity's reach (declared, counted here).
    pub sys_lost: u64,
    /// SPARE pages lost in crash windows (tolerated and declared).
    pub spare_lost: u64,
    /// Torn pages found by recovery scans (programs cut mid-flight).
    pub torn_pages: u64,
    /// Volatile trims resurrected by recovery and re-trimmed at remount.
    pub resurrected_trimmed: u64,
}

/// Remounts the device after a power cut and audits the rebuild.
fn remount_and_audit<C: Classifier>(
    controller: &mut SosController<SosDevice, C>,
    auditors: &mut CoreAuditorSet,
    report: &mut CrashSweepReport,
) -> Result<(), FtlError> {
    report.crashes += 1;
    let before = controller.device.audit_snapshot();
    let remount = controller.device.recover_in_place()?;
    let after = controller.device.audit_snapshot();
    report.findings.extend(
        RecoveryAuditor::audit_remount(&before, &after, &remount)
            .into_iter()
            .map(|violation| AuditFinding {
                source: "recovery",
                violation,
            }),
    );
    // Recovery rebuilds wear and GC statistics from scratch, so the
    // stateful auditors must not compare across the remount: start a
    // fresh set and re-baseline it on the recovered snapshot.
    *auditors = CoreAuditorSet::new();
    report.findings.extend(auditors.audit(&after));
    report.sys_repaired += remount.sys_repaired;
    report.sys_lost += remount.sys_lost.len() as u64;
    report.spare_lost += remount.spare_lost.len() as u64;
    report.torn_pages += (remount.sys.torn_pages.len() + remount.spare.torn_pages.len()) as u64;
    report.resurrected_trimmed += remount.resurrected_trimmed;
    controller.clear_crashed();
    Ok(())
}

/// Runs an SOS-device simulation for `days`, cutting power at a
/// scheduled device operation every day and remounting through the full
/// recovery path each time.
///
/// Each day a [`FaultKind::PowerCut`] is armed a small, seed-derived
/// number of operations (1..=101) into the day, alternating between the
/// SYS and SPARE partitions; over hundreds of days the cut lands on
/// essentially every operation offset of the daily op stream. After a
/// crash the device is remounted via
/// [`SosDevice::recover_in_place`](sos_core::SosDevice::recover_in_place)
/// and audited: the [`RecoveryAuditor`] checks the rebuild against the
/// pre-crash snapshot, then a fresh [`CoreAuditorSet`] re-verifies every
/// standing invariant. Checkpoints are taken every
/// `checkpoint_interval_days` (0 never checkpoints, forcing full-device
/// recovery scans); a cut can land inside the checkpoint write itself,
/// which the generational checkpoint format must survive.
///
/// `seed` drives the crash schedule (the per-day op offsets) and the
/// injector's fault payloads (how torn pages are scrambled). The
/// workload's own randomness comes from the controller's construction
/// seeds, so the same controller setup plus the same `seed` replays the
/// identical crash sequence — pair with [`seed_from_env`] to make runs
/// reproducible from the command line.
///
/// # Errors
///
/// Propagates any [`FtlError`] from recovery or checkpointing other
/// than the injected power loss itself; a healthy sweep returns a
/// report with an empty `findings` vector.
pub fn run_crashy_days<C: Classifier>(
    controller: &mut SosController<SosDevice, C>,
    days: u64,
    checkpoint_interval_days: u64,
    seed: u64,
) -> Result<CrashSweepReport, FtlError> {
    let mut auditors = CoreAuditorSet::new();
    let mut report = CrashSweepReport {
        days,
        ..CrashSweepReport::default()
    };
    let mut target = Partition::Sys;
    // xorshift64: cheap, deterministic op-offset schedule.
    let mut rng = seed | 1;
    for day in 1..=days {
        // Arm the day's power cut unless one is still pending from a
        // quiet day (a cut armed on a partition that then saw no
        // traffic fires at that partition's next operation instead).
        let pending = controller
            .device
            .partition(target)
            .ftl
            .injector()
            .is_some_and(|injector| !injector.pending().is_empty());
        if !pending {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let offset = 1 + rng % 101;
            let at = controller.device.injector_op_count(target) + offset;
            controller.device.arm_fault(
                target,
                FaultPlan {
                    kind: FaultKind::PowerCut,
                    at: FaultAt::OpCount(at),
                },
                seed.wrapping_add(day),
            );
        }
        controller.run_day();
        if controller.crashed() {
            remount_and_audit(controller, &mut auditors, &mut report)?;
            target = match target {
                Partition::Sys => Partition::Spare,
                Partition::Spare => Partition::Sys,
            };
        } else {
            report
                .findings
                .extend(auditors.audit(&controller.device.audit_snapshot()));
        }
        if checkpoint_interval_days != 0 && day.is_multiple_of(checkpoint_interval_days) {
            match controller.device.checkpoint() {
                Ok(()) => report.checkpoints += 1,
                // The armed cut landed inside the checkpoint write
                // itself; the generational format falls back to the
                // previous checkpoint at recovery.
                Err(FtlError::Device(FlashError::PowerLoss)) => {
                    remount_and_audit(controller, &mut auditors, &mut report)?;
                    target = match target {
                        Partition::Sys => Partition::Spare,
                        Partition::Spare => Partition::Sys,
                    };
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(report)
}

/// Reads the harness seed from the `SOS_SEED` environment variable
/// (decimal), falling back to `default` when unset or unparsable.
///
/// The bench binaries thread this through device, workload, and crash
/// schedules, so any logged run can be replayed exactly:
/// `SOS_SEED=42 cargo run --release --bin exp_crash_sweep`.
pub fn seed_from_env(default: u64) -> u64 {
    std::env::var("SOS_SEED")
        .ok()
        .and_then(|value| value.trim().parse().ok())
        .unwrap_or(default)
}
