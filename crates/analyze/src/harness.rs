//! Audited harnesses: per-operation FTL auditing for tests and
//! interval auditing for long simulations.
//!
//! [`AuditedFtl`] wraps an [`Ftl`] and re-audits the full state after
//! every mutating operation; with the `audit` feature disabled the
//! wrapper compiles down to plain forwarding. [`run_audited_days`]
//! drives an [`SosController`] for a number of simulated days, auditing
//! the whole device at a configurable day interval — cheap enough to
//! leave on in long experiments.

use crate::auditors::{FtlAuditorSet, PlacementAuditor};
use crate::{StateAuditor, Violation};
use sos_classify::Classifier;
use sos_core::{CoreState, SosController, SosDevice};
use sos_ftl::{Ftl, FtlError, ReadResult, ScrubReport, StreamId};

/// A violation tagged with the state it was found in (`"sys"`,
/// `"spare"`, `"core"`, or `"ftl"` for a bare [`AuditedFtl`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// Which snapshot the violation was found in.
    pub source: &'static str,
    /// The violation itself.
    pub violation: Violation,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.source, self.violation)
    }
}

/// All auditors needed for a whole SOS device: one FTL set per
/// partition plus the placement/parity rules.
#[derive(Debug, Default)]
pub struct CoreAuditorSet {
    sys: FtlAuditorSet,
    spare: FtlAuditorSet,
    placement: PlacementAuditor,
}

impl CoreAuditorSet {
    /// A fresh set with no snapshot history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Audits one device snapshot, tagging violations by partition.
    pub fn audit(&mut self, state: &CoreState) -> Vec<AuditFinding> {
        let mut findings: Vec<AuditFinding> = self
            .sys
            .audit(&state.sys)
            .into_iter()
            .map(|violation| AuditFinding {
                source: "sys",
                violation,
            })
            .collect();
        findings.extend(
            self.spare
                .audit(&state.spare)
                .into_iter()
                .map(|violation| AuditFinding {
                    source: "spare",
                    violation,
                }),
        );
        findings.extend(
            self.placement
                .audit(state)
                .into_iter()
                .map(|violation| AuditFinding {
                    source: "core",
                    violation,
                }),
        );
        findings
    }
}

/// An FTL wrapper that audits the complete state after every operation.
///
/// Intended for tests: violations accumulate in [`AuditedFtl::violations`]
/// instead of panicking, so a test decides how strictly to react. With
/// the `audit` feature disabled the per-operation checks vanish.
#[derive(Debug)]
pub struct AuditedFtl {
    ftl: Ftl,
    #[cfg(feature = "audit")]
    auditors: FtlAuditorSet,
    /// Violations found so far, in operation order.
    pub violations: Vec<Violation>,
}

impl AuditedFtl {
    /// Wraps an FTL, auditing its (clean) initial state.
    pub fn new(ftl: Ftl) -> Self {
        let mut audited = AuditedFtl {
            ftl,
            #[cfg(feature = "audit")]
            auditors: FtlAuditorSet::new(),
            violations: Vec::new(),
        };
        audited.check();
        audited
    }

    fn check(&mut self) {
        #[cfg(feature = "audit")]
        {
            let state = self.ftl.audit_snapshot();
            self.violations.extend(self.auditors.audit(&state));
        }
    }

    /// Read access to the wrapped FTL.
    pub fn inner(&self) -> &Ftl {
        &self.ftl
    }

    /// Unwraps back into the plain FTL, discarding audit state.
    pub fn into_inner(self) -> Ftl {
        self.ftl
    }

    /// Drains the violations collected so far.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// [`Ftl::write`], followed by a full audit.
    pub fn write(&mut self, lpn: u64, data: &[u8]) -> Result<f64, FtlError> {
        let result = self.ftl.write(lpn, data);
        self.check();
        result
    }

    /// [`Ftl::write_stream`], followed by a full audit.
    pub fn write_stream(
        &mut self,
        lpn: u64,
        data: &[u8],
        stream: StreamId,
    ) -> Result<f64, FtlError> {
        let result = self.ftl.write_stream(lpn, data, stream);
        self.check();
        result
    }

    /// [`Ftl::read`], followed by a full audit (reads mutate statistics
    /// and can surface lost data).
    pub fn read(&mut self, lpn: u64) -> Result<ReadResult, FtlError> {
        let result = self.ftl.read(lpn);
        self.check();
        result
    }

    /// [`Ftl::trim`], followed by a full audit.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        let result = self.ftl.trim(lpn);
        self.check();
        result
    }

    /// [`Ftl::scrub`], followed by a full audit.
    pub fn scrub(&mut self) -> Result<ScrubReport, FtlError> {
        let result = self.ftl.scrub();
        self.check();
        result
    }

    /// [`Ftl::advance_days`] (no audit needed: time alone moves no
    /// mapping state, only the error clock).
    pub fn advance_days(&mut self, days: f64) {
        self.ftl.advance_days(days);
    }
}

/// Runs an SOS-device simulation for `days`, auditing the whole device
/// every `interval_days` (0 audits only at the end). Returns all tagged
/// findings; a healthy run returns an empty vector.
pub fn run_audited_days<C: Classifier>(
    controller: &mut SosController<SosDevice, C>,
    days: u64,
    interval_days: u64,
) -> Vec<AuditFinding> {
    let mut auditors = CoreAuditorSet::new();
    let mut findings = Vec::new();
    for day in 1..=days {
        controller.run_day();
        if interval_days != 0 && day.is_multiple_of(interval_days) {
            findings.extend(auditors.audit(&controller.device.audit_snapshot()));
        }
    }
    if interval_days == 0 || days == 0 || !days.is_multiple_of(interval_days) {
        findings.extend(auditors.audit(&controller.device.audit_snapshot()));
    }
    findings
}
