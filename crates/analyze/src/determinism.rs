//! The determinism pass: prove that experiment output is thread-count-
//! and process-invariant.
//!
//! The paper's population-scale claims need fleet runs of 10⁴–10⁶
//! device-lifetimes on the parallel runner, and those runs are only
//! comparable across `SOS_THREADS` settings and process invocations if
//! every byte of experiment stdout is a pure function of the options
//! and the base seed. PR 4 found two real nondeterminism bugs (HashMap
//! iteration order leaking into E11 medPSNR; seed-stream divergence in
//! the error sampler) — but only *dynamically*, by diffing stdout at
//! different thread counts. This pass makes the property static: it
//! walks the [`CallGraph`] from the deterministic-output entry points
//! (the experiment report functions, the runner fan-out, and the
//! `perf_suite` kernels) and flags every **nondeterminism source** in
//! the reachable, non-test function set:
//!
//! * iteration over `HashMap`/`HashSet` (`.iter()`, `.keys()`,
//!   `.values()`, `.drain()`, …, or a `for` loop over a map-typed
//!   binding) — iteration order is randomized per process;
//! * `Instant::now()` / `SystemTime::now()` outside the stderr-timing
//!   allowlist — wall-clock values must never reach stdout;
//! * `std::env::var` outside the declared set (`SOS_THREADS`,
//!   `SOS_SEED`) — reading any other variable makes output depend on
//!   ambient process state;
//! * `thread::current()` / thread-id inspection — worker identity must
//!   not influence results;
//! * entropy-seeded RNG construction (`thread_rng`, `from_entropy`,
//!   `OsRng`) — every RNG must derive from `task_seed`;
//! * `.lock()` on a `Mutex<f64>`/`Mutex<f32>` — the unordered
//!   floating-point reduction shape, where `a + b + c` depends on
//!   worker completion order.
//!
//! Receiver typing is a deliberately simple per-file **name-based
//! tiebreak**: a binding, field, or parameter declared with a
//! `HashMap`/`HashSet` type (or bound to `HashMap::new()`) marks that
//! identifier as map-typed for the whole file. This over-approximates
//! (a same-named `Vec` in the same file is also flagged) and can miss
//! re-borrowed aliases; both directions are acceptable for a lint whose
//! misses are caught by the dynamic `runner_determinism` diff tests and
//! whose false positives cost one justified suppression line.
//!
//! Every finding carries the call chain from an entry point, uses the
//! `nondeterminism` rule family in the inline suppression system
//! ([`crate::suppress`]), and lands in the `--format json` report. The
//! workspace is pinned to a zero-finding baseline by the analyzer
//! self-test.

use crate::callgraph::CallGraph;
use crate::panicpath::EntryPoint;
use crate::parse::lexer::{Token, TokenKind};
use crate::parse::{SourceFile, Workspace};
use crate::suppress::SuppressionSet;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;

/// The suppression rule name for this pass.
pub const NONDETERMINISM_RULE: &str = "nondeterminism";

/// Environment variables experiment code is allowed to read: the
/// runner's worker count and the base-seed override. Anything else
/// makes output depend on ambient process state.
pub const ALLOWED_ENV_VARS: &[&str] = &["SOS_THREADS", "SOS_SEED"];

/// Free functions whose *job* is timing and whose clock readings are
/// confined to stderr (`RunnerReport`) or to the tolerance-gated perf
/// baseline: the runner fan-out and the seven `perf_suite` kernels.
/// Wall-clock and float-reduction hits inside these bodies are counted
/// as `allowlisted`, not reported. Map iteration and the other source
/// kinds are still enforced even here.
pub const STDERR_TIMING_ALLOWLIST: &[&str] = &[
    "run_tasks",
    "read_hot",
    "write_path",
    "gc_churn",
    "recovery_scan",
    "end_to_end_day",
    "end_to_end_day_t8",
    "flash_cache_day",
];

/// Map methods whose result depends on iteration order.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Container wrappers skipped when walking left from `HashMap` to the
/// declared identifier (`files: Vec<HashMap<…>>` still marks `files`).
const TYPE_WRAPPERS: &[&str] = &["Vec", "VecDeque", "Option", "Box", "Arc", "Rc", "RefCell"];

/// The default entry set: every function whose output must be
/// byte-identical across `SOS_THREADS` settings and process
/// invocations — the five experiment report functions (E11, E10, E9,
/// E12, E17), the parallel runner's fan-out/seed/thread paths, and the
/// `perf_suite` kernels (whose *structure* — names, seeds, units — is
/// diffed; their timing values go through the allowlist).
pub fn deterministic_entry_points() -> Vec<EntryPoint> {
    [
        "end_to_end_report",
        "crash_sweep_report",
        "wl_ablation_report",
        "capacity_variance_report",
        "flash_cache_report",
        "run_tasks",
        "task_seed",
        "thread_count",
        "run_suite",
        "read_hot",
        "write_path",
        "gc_churn",
        "recovery_scan",
        "end_to_end_day",
        "end_to_end_day_t8",
        "flash_cache_day",
        "ratchet_advance",
    ]
    .iter()
    .map(|name| EntryPoint::function(name))
    .collect()
}

/// The category of nondeterminism source a finding flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NondetSource {
    /// Iteration over a `HashMap`/`HashSet`-typed binding.
    MapIteration,
    /// `Instant::now()` / `SystemTime::now()` outside the allowlist.
    WallClock,
    /// `std::env::var` outside the declared variable set.
    EnvRead,
    /// `thread::current()` / thread-id inspection.
    ThreadIdentity,
    /// RNG construction from entropy instead of `task_seed`.
    UnseededRng,
    /// `.lock()` on a `Mutex<f64>` — unordered float accumulation.
    FloatReduction,
}

impl NondetSource {
    /// Is this source kind eligible for the stderr-timing allowlist?
    fn allowlist_eligible(self) -> bool {
        matches!(self, NondetSource::WallClock | NondetSource::FloatReduction)
    }
}

impl fmt::Display for NondetSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NondetSource::MapIteration => "map-iteration",
            NondetSource::WallClock => "wall-clock",
            NondetSource::EnvRead => "env-read",
            NondetSource::ThreadIdentity => "thread-identity",
            NondetSource::UnseededRng => "unseeded-rng",
            NondetSource::FloatReduction => "float-reduction",
        };
        f.write_str(name)
    }
}

/// One nondeterminism source reachable from an entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NondetFinding {
    /// File, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the source.
    pub line: usize,
    /// The source category.
    pub source: NondetSource,
    /// Human-readable description.
    pub message: String,
    /// Call chain from an entry point to the containing function.
    pub chain: Vec<String>,
}

impl fmt::Display for NondetFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [nondeterminism/{}] {} (via {})",
            self.file.display(),
            self.line,
            self.source,
            self.message,
            self.chain.join(" -> ")
        )
    }
}

/// The outcome of one determinism pass.
#[derive(Debug, Clone, Default)]
pub struct DeterminismReport {
    /// Entry points that resolved to at least one definition.
    pub entry_points: Vec<String>,
    /// Configured entry points with **no** matching definition — a
    /// rename hazard, treated as a gate failure by `sos-lint`.
    pub missing_entry_points: Vec<String>,
    /// Number of reachable non-test functions scanned.
    pub reachable_fns: usize,
    /// Unsuppressed findings.
    pub findings: Vec<NondetFinding>,
    /// Findings silenced by a justified inline suppression.
    pub suppressed: usize,
    /// Clock/float-reduction hits inside allowlisted timing functions.
    pub allowlisted: usize,
    /// Call sites (across reachable functions) that resolved to no
    /// workspace definition — recorded, never silently dropped.
    pub unresolved_calls: usize,
}

/// Runs the pass over a parsed workspace with the given entry points.
pub fn run_determinism(workspace: &Workspace, entries: &[EntryPoint]) -> DeterminismReport {
    let graph = CallGraph::build(workspace);
    let mut report = DeterminismReport::default();

    // Resolve entry points and seed the BFS.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut parent: HashMap<usize, Option<usize>> = HashMap::new();
    for entry in entries {
        let ids = graph.find(entry.owner.as_deref(), &entry.name);
        let live: Vec<usize> = ids
            .into_iter()
            .filter(|&id| !graph.nodes[id].is_test)
            .collect();
        if live.is_empty() {
            report.missing_entry_points.push(entry.label());
            continue;
        }
        report.entry_points.push(entry.label());
        for id in live {
            if let Entry::Vacant(slot) = parent.entry(id) {
                slot.insert(None);
                queue.push_back(id);
            }
        }
    }

    // Breadth-first reachability with parent pointers, so each finding
    // can report a shortest call chain back to an entry point.
    let mut reachable: Vec<usize> = Vec::new();
    while let Some(node) = queue.pop_front() {
        reachable.push(node);
        for &callee in &graph.edges[node] {
            if graph.nodes[callee].is_test {
                continue;
            }
            parent.entry(callee).or_insert_with(|| {
                queue.push_back(callee);
                Some(node)
            });
        }
    }
    report.reachable_fns = reachable.len();

    // Per-file suppression sets and receiver-type tables, built lazily.
    let mut suppressions: HashMap<usize, SuppressionSet> = HashMap::new();
    let mut type_tables: HashMap<usize, FileTypes> = HashMap::new();

    for &node_id in &reachable {
        let node = &graph.nodes[node_id];
        report.unresolved_calls += graph.unresolved[node_id].len();
        let file = &workspace.files[node.file_index];
        let Some((start, end)) = file.items.fns[node.item_index].body else {
            continue;
        };
        let chain = chain_to(&graph, &parent, node_id);
        let allowlisted_fn =
            node.owner.is_none() && STDERR_TIMING_ALLOWLIST.contains(&node.name.as_str());
        let types = type_tables
            .entry(node.file_index)
            .or_insert_with(|| FileTypes::collect(file));
        let set = suppressions
            .entry(node.file_index)
            .or_insert_with(|| SuppressionSet::collect(file));
        for (line, source, message) in scan_sources(file, types, start, end) {
            if allowlisted_fn && source.allowlist_eligible() {
                report.allowlisted += 1;
            } else if set.allows(NONDETERMINISM_RULE, line) {
                report.suppressed += 1;
            } else {
                report.findings.push(NondetFinding {
                    file: file.path.clone(),
                    line,
                    source,
                    message,
                    chain: chain.clone(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.entry_points.sort();
    report
}

/// Reconstructs the qualified-name chain entry → … → `node`.
fn chain_to(graph: &CallGraph, parent: &HashMap<usize, Option<usize>>, node: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cursor = Some(node);
    while let Some(id) = cursor {
        chain.push(graph.nodes[id].qualified_name());
        cursor = parent.get(&id).copied().flatten();
    }
    chain.reverse();
    chain
}

/// Per-file receiver-type table: identifiers declared (anywhere in the
/// file) with a map type or a float-mutex type.
struct FileTypes {
    map_idents: HashSet<String>,
    float_mutex_idents: HashSet<String>,
}

impl FileTypes {
    /// Scans a whole file's token stream for `name: HashMap<…>`-shaped
    /// declarations (fields, params, lets) and `name = HashMap::new()`
    /// inferred bindings, for both map types and `Mutex<f64>`/`f32`.
    fn collect(file: &SourceFile) -> FileTypes {
        let source = &file.source;
        let tokens = &file.tokens;
        let idx: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let text_at = |k: usize| tokens[idx[k]].text(source);
        let mut map_idents = HashSet::new();
        let mut float_mutex_idents = HashSet::new();
        for k in 0..idx.len() {
            if tokens[idx[k]].kind != TokenKind::Ident {
                continue;
            }
            match text_at(k) {
                "HashMap" | "HashSet" => {
                    if let Some(name) = declared_ident(source, tokens, &idx, k) {
                        map_idents.insert(name);
                    }
                }
                "Mutex" => {
                    let float_param = idx.get(k + 1).is_some_and(|_| text_at(k + 1) == "<")
                        && idx
                            .get(k + 2)
                            .is_some_and(|_| matches!(text_at(k + 2), "f64" | "f32"));
                    if float_param {
                        if let Some(name) = declared_ident(source, tokens, &idx, k) {
                            float_mutex_idents.insert(name);
                        }
                    }
                }
                _ => {}
            }
        }
        FileTypes {
            map_idents,
            float_mutex_idents,
        }
    }
}

/// Walks left from a type name at `idx[k]` to the identifier it is
/// declared for: skips path segments (`std::collections::`), wrapper
/// types (`Vec<…>`), `&`/`mut`, then expects `name :` (ascription) or
/// `name =` (inferred constructor binding).
fn declared_ident(source: &str, tokens: &[Token], idx: &[usize], k: usize) -> Option<String> {
    let mut j = k;
    loop {
        let p = j.checked_sub(1)?;
        let token = &tokens[idx[p]];
        let text = token.text(source);
        match text {
            // `std :: collections :: HashMap` — skip `::` and its
            // qualifying segment in one step.
            "::" => j = p.checked_sub(1)?,
            "<" | "&" | "mut" => j = p,
            _ if token.kind == TokenKind::Ident && TYPE_WRAPPERS.contains(&text) => j = p,
            _ => break,
        }
    }
    let sep = j.checked_sub(1)?;
    if !matches!(tokens[idx[sep]].text(source), ":" | "=") {
        return None;
    }
    let name_pos = sep.checked_sub(1)?;
    let token = &tokens[idx[name_pos]];
    let text = token.text(source);
    (token.kind == TokenKind::Ident && !crate::callgraph::is_expression_keyword(text))
        .then(|| text.to_string())
}

/// Scans one function body for nondeterminism sources.
fn scan_sources(
    file: &SourceFile,
    types: &FileTypes,
    start: usize,
    end: usize,
) -> Vec<(usize, NondetSource, String)> {
    let source = &file.source;
    let tokens = &file.tokens;
    let idx: Vec<usize> = (start..=end.min(tokens.len().saturating_sub(1)))
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text_at = |k: usize| tokens[idx[k]].text(source);
    let kind_at = |k: usize| tokens[idx[k]].kind;
    let mut found = Vec::new();
    for k in 0..idx.len() {
        let token = &tokens[idx[k]];
        if token.kind != TokenKind::Ident {
            continue;
        }
        let text = token.text(source);
        let prev = k.checked_sub(1).map(&text_at);
        let prev2 = k.checked_sub(2).map(&text_at);
        let next = idx.get(k + 1).map(|_| text_at(k + 1));
        match text {
            // `recv.iter()` / `recv.keys()` / … where `recv` is
            // map-typed (including `self.field.iter()` — the field
            // identifier sits at k-2).
            _ if MAP_ITER_METHODS.contains(&text) && prev == Some(".") && next == Some("(") => {
                if let Some(recv) = prev2 {
                    if k >= 2
                        && kind_at(k - 2) == TokenKind::Ident
                        && types.map_idents.contains(recv)
                    {
                        found.push((
                            token.line,
                            NondetSource::MapIteration,
                            format!(
                                "`{recv}.{text}()` iterates a HashMap/HashSet in nondeterministic order"
                            ),
                        ));
                    }
                }
            }
            // `for x in &map { … }` — a map-typed identifier in the
            // iterator expression. Identifiers followed by `.` are
            // left to the method rule above (avoids double-reporting
            // `for k in map.keys()`).
            "for" => {
                if let Some((line, name)) = for_loop_over_map(source, tokens, &idx, k, types) {
                    found.push((
                        line,
                        NondetSource::MapIteration,
                        format!("`for` over map-typed `{name}` has nondeterministic order"),
                    ));
                }
            }
            "now" if prev == Some("::") => {
                if matches!(prev2, Some("Instant") | Some("SystemTime")) {
                    found.push((
                        token.line,
                        NondetSource::WallClock,
                        format!(
                            "{}::now() on a deterministic-output path",
                            prev2.unwrap_or_default()
                        ),
                    ));
                }
            }
            "var" | "var_os" if prev == Some("::") && prev2 == Some("env") => {
                let arg = idx.get(k + 2).map(|_| (kind_at(k + 2), text_at(k + 2)));
                match arg {
                    Some((TokenKind::Str, literal)) if next == Some("(") => {
                        let name = literal.trim_matches('"');
                        if !ALLOWED_ENV_VARS.contains(&name) {
                            found.push((
                                token.line,
                                NondetSource::EnvRead,
                                format!(
                                    "env::{text}(\"{name}\") is outside the declared set {ALLOWED_ENV_VARS:?}"
                                ),
                            ));
                        }
                    }
                    _ => {
                        found.push((
                            token.line,
                            NondetSource::EnvRead,
                            format!("env::{text} with a non-literal variable name"),
                        ));
                    }
                }
            }
            "current" if prev == Some("::") && prev2 == Some("thread") => {
                found.push((
                    token.line,
                    NondetSource::ThreadIdentity,
                    "thread::current() — worker identity must not influence results".to_string(),
                ));
            }
            "thread_rng" if next == Some("(") => {
                found.push((
                    token.line,
                    NondetSource::UnseededRng,
                    "thread_rng() is entropy-seeded; derive the RNG from task_seed".to_string(),
                ));
            }
            "from_entropy" if matches!(prev, Some("::") | Some(".")) && next == Some("(") => {
                found.push((
                    token.line,
                    NondetSource::UnseededRng,
                    "from_entropy() is entropy-seeded; derive the RNG from task_seed".to_string(),
                ));
            }
            "OsRng" => {
                found.push((
                    token.line,
                    NondetSource::UnseededRng,
                    "OsRng draws from the OS entropy pool; derive the RNG from task_seed"
                        .to_string(),
                ));
            }
            "lock" if prev == Some(".") && next == Some("(") => {
                if let Some(recv) = prev2 {
                    if k >= 2
                        && kind_at(k - 2) == TokenKind::Ident
                        && types.float_mutex_idents.contains(recv)
                    {
                        found.push((
                            token.line,
                            NondetSource::FloatReduction,
                            format!(
                                "`{recv}` accumulates floats across workers; `a + b + c` depends on completion order"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    found
}

/// For a `for` keyword at `idx[k]`, finds the iterator expression
/// (between the depth-0 `in` and the loop body `{`) and returns the
/// first map-typed identifier in it that is not a method receiver.
fn for_loop_over_map(
    source: &str,
    tokens: &[Token],
    idx: &[usize],
    k: usize,
    types: &FileTypes,
) -> Option<(usize, String)> {
    let text_at = |k: usize| tokens[idx[k]].text(source);
    // Locate the `in` that ends the pattern (depth-0: tuple patterns
    // like `for (k, v) in …` contain parens).
    let mut depth = 0i32;
    let mut in_pos = None;
    for j in k + 1..idx.len() {
        let text = text_at(j);
        match text {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && tokens[idx[j]].kind == TokenKind::Ident => {
                in_pos = Some(j);
                break;
            }
            "{" if depth == 0 => return None,
            _ => {}
        }
    }
    let in_pos = in_pos?;
    for j in in_pos + 1..idx.len() {
        let token = &tokens[idx[j]];
        let text = token.text(source);
        if text == "{" {
            return None;
        }
        if token.kind == TokenKind::Ident && types.map_idents.contains(text) {
            let next_is_dot = idx.get(j + 1).is_some_and(|_| text_at(j + 1) == ".");
            if !next_is_dot {
                return Some((token.line, text.to_string()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Workspace;

    fn run(src: &str, entries: &[EntryPoint]) -> DeterminismReport {
        let ws = Workspace::from_sources(&[("bench", "crates/bench/src/lib.rs", src)]);
        run_determinism(&ws, entries)
    }

    fn entry(name: &str) -> Vec<EntryPoint> {
        vec![EntryPoint::function(name)]
    }

    #[test]
    fn map_iteration_is_found_with_chains() {
        let src = "struct S { objects: std::collections::HashMap<u64, u64> }\nimpl S {\n    fn tally(&self) -> u64 { self.objects.values().sum() }\n}\npub fn report(s: &S) -> u64 { helper(s) }\nfn helper(s: &S) -> u64 { s.tally() }\n";
        let report = run(src, &entry("report"));
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        let finding = &report.findings[0];
        assert_eq!(finding.source, NondetSource::MapIteration);
        assert_eq!(finding.line, 3);
        assert_eq!(finding.chain, vec!["report", "helper", "S::tally"]);
    }

    #[test]
    fn btreemap_and_get_only_hashmap_are_clean() {
        let src = "struct S { sorted: std::collections::BTreeMap<u64, u64>, raw: std::collections::HashMap<u64, u64> }\nimpl S {\n    fn sum(&self) -> u64 { self.sorted.values().sum::<u64>() + self.raw.get(&1).copied().unwrap_or(0) }\n}\npub fn report(s: &S) -> u64 { s.sum() }\n";
        let report = run(src, &entry("report"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn for_loop_over_map_is_found() {
        let src = "pub fn report() -> u64 {\n    let mut seen = std::collections::HashSet::new();\n    seen.insert(3u64);\n    let mut total = 0;\n    for value in &seen {\n        total += value;\n    }\n    total\n}\n";
        let report = run(src, &entry("report"));
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].source, NondetSource::MapIteration);
        assert_eq!(report.findings[0].line, 5);
    }

    #[test]
    fn for_loop_over_vec_and_range_are_clean() {
        let src = "pub fn report(items: Vec<u64>) -> u64 {\n    let mut total = 0;\n    for item in &items {\n        total += item;\n    }\n    for i in 0..4u64 {\n        total += i;\n    }\n    total\n}\n";
        let report = run(src, &entry("report"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn inferred_map_binding_is_typed() {
        let src = "pub fn report() -> usize {\n    let mut counts = std::collections::HashMap::new();\n    counts.insert(1u64, 2u64);\n    counts.keys().count()\n}\n";
        let report = run(src, &entry("report"));
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].source, NondetSource::MapIteration);
    }

    #[test]
    fn wall_clock_is_found_and_allowlisted_in_timing_fns() {
        let src = "use std::time::Instant;\npub fn report() -> f64 { helper() }\nfn helper() -> f64 { Instant::now().elapsed().as_secs_f64() }\npub fn read_hot() -> f64 { Instant::now().elapsed().as_secs_f64() }\n";
        let report = run(
            src,
            &[
                EntryPoint::function("report"),
                EntryPoint::function("read_hot"),
            ],
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].source, NondetSource::WallClock);
        assert_eq!(report.findings[0].chain, vec!["report", "helper"]);
        assert_eq!(report.allowlisted, 1);
    }

    #[test]
    fn env_reads_outside_the_declared_set_are_found() {
        let src = "pub fn report(name: &str) -> bool {\n    let _ok = std::env::var(\"SOS_THREADS\").is_ok();\n    let _also = std::env::var(\"SOS_SEED\").is_ok();\n    let _bad = std::env::var(\"HOME\").is_ok();\n    std::env::var(name).is_ok()\n}\n";
        let report = run(src, &entry("report"));
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(report.findings[0].message.contains("HOME"));
        assert!(report.findings[1].message.contains("non-literal"));
    }

    #[test]
    fn thread_identity_and_entropy_rngs_are_found() {
        let src = "pub fn report() {\n    let _who = std::thread::current();\n    let _rng = StdRng::from_entropy();\n    let _tr = thread_rng();\n    let _os = OsRng;\n}\n";
        let report = run(src, &entry("report"));
        let sources: Vec<NondetSource> = report.findings.iter().map(|f| f.source).collect();
        assert_eq!(
            sources,
            vec![
                NondetSource::ThreadIdentity,
                NondetSource::UnseededRng,
                NondetSource::UnseededRng,
                NondetSource::UnseededRng,
            ]
        );
    }

    #[test]
    fn seeded_rng_is_clean() {
        let src = "pub fn report(seed: u64) -> u64 {\n    let mut rng = StdRng::seed_from_u64(seed);\n    rng.next_u64()\n}\n";
        let report = run(src, &entry("report"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn float_mutex_lock_is_found_and_int_mutex_is_clean() {
        let src = "pub fn report() -> f64 {\n    let busy: std::sync::Mutex<f64> = std::sync::Mutex::new(0.0);\n    let hits: std::sync::Mutex<u64> = std::sync::Mutex::new(0);\n    *hits.lock().unwrap() += 1;\n    *busy.lock().unwrap()\n}\npub fn run_tasks() -> f64 {\n    let busy: std::sync::Mutex<f64> = std::sync::Mutex::new(0.0);\n    *busy.lock().unwrap()\n}\n";
        let report = run(
            src,
            &[
                EntryPoint::function("report"),
                EntryPoint::function("run_tasks"),
            ],
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].source, NondetSource::FloatReduction);
        assert_eq!(report.allowlisted, 1);
    }

    #[test]
    fn suppressions_silence_and_count() {
        let src = "pub fn report() -> f64 {\n    // sos-lint: allow(nondeterminism, \"diagnostic timing, stderr only\")\n    let t = std::time::Instant::now();\n    t.elapsed().as_secs_f64()\n}\n";
        let report = run(src, &entry("report"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn test_functions_are_not_scanned() {
        let src = "pub fn report() -> u64 { 3 }\n#[cfg(test)]\nmod tests {\n    fn helper() { let m = std::collections::HashMap::new(); let _ = m.keys(); }\n}\n";
        let report = run(src, &entry("report"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn missing_entry_points_are_reported() {
        let report = run(
            "pub fn report() {}\n",
            &[EntryPoint::function("report"), EntryPoint::function("gone")],
        );
        assert_eq!(report.entry_points, vec!["report"]);
        assert_eq!(report.missing_entry_points, vec!["gone"]);
    }

    #[test]
    fn default_entry_points_cover_experiments_runner_and_kernels() {
        let labels: Vec<String> = deterministic_entry_points()
            .iter()
            .map(|e| e.label())
            .collect();
        for name in [
            "end_to_end_report",
            "flash_cache_report",
            "run_tasks",
            "read_hot",
            "flash_cache_day",
        ] {
            assert!(labels.contains(&name.to_string()), "missing {name}");
        }
    }
}
