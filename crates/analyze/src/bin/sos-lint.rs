//! Repo-specific lint runner: `cargo run -p sos-analyze --bin sos-lint`.
//!
//! Runs the token-stream lint rules, the panic-freedom pass, **and**
//! the determinism pass over the workspace sources (see
//! [`sos_analyze::lint`], [`sos_analyze::panicpath`], and
//! [`sos_analyze::determinism`]) and exits non-zero when any finding
//! survives — or when a configured entry point no longer resolves (a
//! rename hazard) — so CI and `scripts/check.sh` can gate on it.
//!
//! Usage:
//!
//! ```text
//! sos-lint [ROOT] [--format text|json] [--only lint|panic-path|determinism]
//! ```
//!
//! `--format json` prints the machine-readable report
//! ([`sos_analyze::report::JsonReport`]) on stdout; the exit code
//! still reflects the gate. `--only` restricts the run to one pass —
//! CI uses `--only determinism` to publish the determinism report as
//! its own artifact.

use sos_analyze::determinism::NONDETERMINISM_RULE;
use sos_analyze::panicpath::PANIC_PATH_RULE;
use sos_analyze::{
    deterministic_entry_points, device_hot_entry_points, harness_entry_points,
    recovery_entry_points, run_determinism, run_lints_on, run_panic_path, DeterminismReport,
    JsonReport, PanicPathReport, ReportFinding, ReportSummary, Workspace,
};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    Lint,
    PanicPath,
    Determinism,
}

struct Options {
    root: PathBuf,
    json: bool,
    only: Option<Pass>,
}

impl Options {
    fn runs(&self, pass: Pass) -> bool {
        self.only.is_none() || self.only == Some(pass)
    }
}

fn parse_args() -> Result<Options, String> {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut only = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--only" => match args.next().as_deref() {
                Some("lint") => only = Some(Pass::Lint),
                Some("panic-path") => only = Some(Pass::PanicPath),
                Some("determinism") => only = Some(Pass::Determinism),
                other => {
                    return Err(format!(
                        "--only expects lint|panic-path|determinism, got {other:?}"
                    ))
                }
            },
            "--help" | "-h" => return Err(
                "usage: sos-lint [ROOT] [--format text|json] [--only lint|panic-path|determinism]"
                    .into(),
            ),
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(Options {
        root: root.unwrap_or_else(default_root),
        json,
        only,
    })
}

fn default_root() -> PathBuf {
    // The binary lives in crates/analyze; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let workspace = Workspace::load(&options.root);
    let lint = if options.runs(Pass::Lint) {
        run_lints_on(&workspace)
    } else {
        Default::default()
    };
    let panic_path = if options.runs(Pass::PanicPath) {
        let mut entry_points = recovery_entry_points();
        entry_points.extend(harness_entry_points());
        entry_points.extend(device_hot_entry_points());
        run_panic_path(&workspace, &entry_points)
    } else {
        PanicPathReport::default()
    };
    let determinism = if options.runs(Pass::Determinism) {
        run_determinism(&workspace, &deterministic_entry_points())
    } else {
        DeterminismReport::default()
    };

    let mut findings: Vec<ReportFinding> = lint
        .findings
        .iter()
        .map(|f| ReportFinding {
            rule: f.rule.to_string(),
            file: f.file.display().to_string(),
            line: f.line,
            message: f.message.clone(),
            chain: Vec::new(),
        })
        .collect();
    findings.extend(panic_path.findings.iter().map(|f| ReportFinding {
        rule: PANIC_PATH_RULE.to_string(),
        file: f.file.display().to_string(),
        line: f.line,
        message: f.message.clone(),
        chain: f.chain.clone(),
    }));
    findings.extend(determinism.findings.iter().map(|f| ReportFinding {
        rule: format!("{NONDETERMINISM_RULE}/{}", f.source),
        file: f.file.display().to_string(),
        line: f.line,
        message: f.message.clone(),
        chain: f.chain.clone(),
    }));

    let mut entry_points = panic_path.entry_points.clone();
    entry_points.extend(determinism.entry_points.iter().cloned());
    entry_points.sort();
    entry_points.dedup();
    let mut missing_entry_points = panic_path.missing_entry_points.clone();
    missing_entry_points.extend(determinism.missing_entry_points.iter().cloned());
    missing_entry_points.sort();
    missing_entry_points.dedup();

    let report = JsonReport {
        version: sos_analyze::report::REPORT_VERSION,
        findings,
        summary: ReportSummary {
            reachable_fns: panic_path.reachable_fns,
            determinism_reachable_fns: determinism.reachable_fns,
            unresolved_calls: panic_path.unresolved_calls + determinism.unresolved_calls,
            suppressed: lint.suppressed + panic_path.suppressed + determinism.suppressed,
            allowlisted: determinism.allowlisted,
            entry_points,
            missing_entry_points,
        },
    };

    let clean = report.findings.is_empty() && report.summary.missing_entry_points.is_empty();
    if options.json {
        print!("{}", report.to_json());
    } else {
        for finding in &lint.findings {
            println!("{finding}");
        }
        for finding in &panic_path.findings {
            println!("{finding}");
        }
        for finding in &determinism.findings {
            println!("{finding}");
        }
        for entry in &report.summary.missing_entry_points {
            println!("sos-lint: entry point `{entry}` matches no function (renamed?)");
        }
        if clean {
            println!(
                "sos-lint: clean ({}) — {} panic-path fns / {} determinism fns reachable from {} entry points, {} suppression(s), {} allowlisted, {} unresolved call(s)",
                options.root.display(),
                report.summary.reachable_fns,
                report.summary.determinism_reachable_fns,
                report.summary.entry_points.len(),
                report.summary.suppressed,
                report.summary.allowlisted,
                report.summary.unresolved_calls,
            );
        } else {
            println!(
                "sos-lint: {} finding(s), {} missing entry point(s)",
                report.findings.len(),
                report.summary.missing_entry_points.len()
            );
        }
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
