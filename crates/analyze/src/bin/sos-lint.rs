//! Repo-specific lint runner: `cargo run -p sos-analyze --bin sos-lint`.
//!
//! Scans the workspace's crate sources for violations of the project
//! rules (see [`sos_analyze::lint`]) and exits non-zero when any are
//! found, so CI and `scripts/check.sh` can gate on it. An optional
//! first argument overrides the workspace root.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    if let Some(arg) = std::env::args().nth(1) {
        return PathBuf::from(arg);
    }
    // The binary lives in crates/analyze; the workspace root is two up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let root = workspace_root();
    let findings = sos_analyze::run_lints(&root);
    if findings.is_empty() {
        println!("sos-lint: clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        println!("{finding}");
    }
    println!("sos-lint: {} finding(s)", findings.len());
    ExitCode::FAILURE
}
