//! The panic-freedom pass: prove that no function reachable from the
//! crash-recovery entry points can abort the process.
//!
//! PR 2 made remount-after-power-cut the correctness backbone of the
//! simulator; a panic anywhere on those paths converts a survivable
//! power cut into data loss (the exact failure §4.3's "degrade, don't
//! abort" discipline exists to prevent). This pass walks the
//! [`CallGraph`] from the configured entry points — `Ftl::recover`,
//! `Ftl::recover_in_place`, the GC and scrub entries, and the host
//! remount paths — and flags every panicking construct in the
//! reachable, non-test function set:
//!
//! * `panic!` / `assert!` / `assert_eq!` / `assert_ne!` /
//!   `unreachable!` / `todo!` / `unimplemented!` invocations
//!   (`debug_assert*` is exempt: it compiles out of release builds,
//!   which is what production recovery runs);
//! * `.unwrap()` / `.expect(…)` (and the `_err` variants);
//! * slice/array/map indexing `x[i]` (including range indexing);
//! * bare `/` and `%` whose divisor is not a non-zero literal and with
//!   no float evidence nearby — integer division by zero panics.
//!
//! Every finding carries the **call chain** from an entry point to the
//! offending function, so the report reads as "a power cut during GC
//! can reach this line". Findings are filtered through the inline
//! suppression mechanism ([`crate::suppress`]); a suppression requires
//! a written justification, so each accepted residual risk is an
//! argued, reviewable decision.

use crate::callgraph::CallGraph;
use crate::parse::lexer::{int_value, TokenKind};
use crate::parse::{SourceFile, Workspace};
use crate::suppress::SuppressionSet;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::PathBuf;

/// The suppression rule name for this pass.
pub const PANIC_PATH_RULE: &str = "panic-path";

/// Macros that unconditionally (or on failure) abort.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Method names that panic on `None`/`Err`.
const UNWRAP_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// A configured root of the reachability walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryPoint {
    /// The impl type the function is defined on, if any.
    pub owner: Option<String>,
    /// The function name.
    pub name: String,
}

impl EntryPoint {
    /// Convenience constructor for a method entry point.
    pub fn method(owner: &str, name: &str) -> EntryPoint {
        EntryPoint {
            owner: Some(owner.to_string()),
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a free-function entry point.
    pub fn function(name: &str) -> EntryPoint {
        EntryPoint {
            owner: None,
            name: name.to_string(),
        }
    }

    /// Human-readable `Owner::name` form.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The default entry set: everything that runs during or immediately
/// after a crash remount, plus the background paths (GC, scrub) whose
/// abort would take down a device mid-service. The FDP placement
/// backend is included explicitly: its bookkeeping runs inside the
/// write, GC, and retire paths, where a panic is a device abort.
pub fn recovery_entry_points() -> Vec<EntryPoint> {
    [
        ("Ftl", "recover"),
        ("Ftl", "recover_in_place"),
        ("Ftl", "ensure_free_space"),
        ("Ftl", "gc_once"),
        ("Ftl", "scrub"),
        ("Ftl", "write_placed"),
        ("StreamPlacement", "open_unit"),
        ("StreamPlacement", "unit_for"),
        ("StreamPlacement", "note_append"),
        ("StreamPlacement", "close_unit"),
        ("StreamPlacement", "evict_block"),
        ("StreamPlacement", "note_erase"),
        ("StreamPlacement", "open_units"),
        ("SosDevice", "recover_in_place"),
        ("StripeManager", "scrub_parity"),
        ("HostFs", "remount"),
    ]
    .iter()
    .map(|(owner, name)| EntryPoint::method(owner, name))
    .collect()
}

/// Entry points for the experiment harness's parallel runner: the
/// scoped-worker fan-out in `sos-bench` must never panic mid-scope (a
/// worker panic poisons the shared result mutex and aborts the whole
/// experiment), so its fan-out, seeding, and thread-count paths get the
/// same reachability audit as the recovery paths.
pub fn harness_entry_points() -> Vec<EntryPoint> {
    ["run_tasks", "task_seed", "thread_count"]
        .iter()
        .map(|name| EntryPoint::function(name))
        .collect()
}

/// Entry points for the device simulator's per-page service path: the
/// read/program loop (including the block-batched error sampler it
/// calls) executes millions of times per simulated day, so a reachable
/// panic there is a device abort in every experiment. Audited as its
/// own root set because these run far more often than the recovery
/// paths and long before any FTL is attached.
pub fn device_hot_entry_points() -> Vec<EntryPoint> {
    [
        ("FlashDevice", "read"),
        ("FlashDevice", "program"),
        ("ErrorBatcher", "sample"),
    ]
    .iter()
    .map(|(owner, name)| EntryPoint::method(owner, name))
    .collect()
}

/// The category of panicking construct a finding flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicConstruct {
    /// A `panic!`-family macro invocation.
    PanicMacro,
    /// `.unwrap()` / `.expect(…)`.
    Unwrap,
    /// `x[i]` indexing.
    Indexing,
    /// `/` or `%` with a possibly-zero integer divisor.
    IntDivision,
}

impl fmt::Display for PanicConstruct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PanicConstruct::PanicMacro => "panic-macro",
            PanicConstruct::Unwrap => "unwrap",
            PanicConstruct::Indexing => "indexing",
            PanicConstruct::IntDivision => "int-division",
        };
        f.write_str(name)
    }
}

/// One panicking construct reachable from an entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicFinding {
    /// File, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line of the construct.
    pub line: usize,
    /// The construct category.
    pub construct: PanicConstruct,
    /// Human-readable description.
    pub message: String,
    /// Call chain from an entry point to the containing function,
    /// as qualified names (`Ftl::recover` → … → containing fn).
    pub chain: Vec<String>,
}

impl fmt::Display for PanicFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [panic-path/{}] {} (via {})",
            self.file.display(),
            self.line,
            self.construct,
            self.message,
            self.chain.join(" -> ")
        )
    }
}

/// The outcome of one panic-freedom pass.
#[derive(Debug, Clone, Default)]
pub struct PanicPathReport {
    /// Entry points that resolved to at least one definition.
    pub entry_points: Vec<String>,
    /// Configured entry points with **no** matching definition — a
    /// rename hazard, treated as a gate failure by `sos-lint`.
    pub missing_entry_points: Vec<String>,
    /// Number of reachable non-test functions scanned.
    pub reachable_fns: usize,
    /// Unsuppressed findings.
    pub findings: Vec<PanicFinding>,
    /// Findings silenced by a justified inline suppression.
    pub suppressed: usize,
    /// Call sites (across reachable functions) that resolved to no
    /// workspace definition — recorded, never silently dropped.
    pub unresolved_calls: usize,
}

/// Runs the pass over a parsed workspace with the given entry points.
pub fn run_panic_path(workspace: &Workspace, entries: &[EntryPoint]) -> PanicPathReport {
    let graph = CallGraph::build(workspace);
    let mut report = PanicPathReport::default();

    // Resolve entry points and seed the BFS.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut parent: HashMap<usize, Option<usize>> = HashMap::new();
    for entry in entries {
        let ids = graph.find(entry.owner.as_deref(), &entry.name);
        let live: Vec<usize> = ids
            .into_iter()
            .filter(|&id| !graph.nodes[id].is_test)
            .collect();
        if live.is_empty() {
            report.missing_entry_points.push(entry.label());
            continue;
        }
        report.entry_points.push(entry.label());
        for id in live {
            if let Entry::Vacant(slot) = parent.entry(id) {
                slot.insert(None);
                queue.push_back(id);
            }
        }
    }

    // Breadth-first reachability with parent pointers, so each finding
    // can report a shortest call chain back to an entry point.
    let mut reachable: Vec<usize> = Vec::new();
    while let Some(node) = queue.pop_front() {
        reachable.push(node);
        for &callee in &graph.edges[node] {
            if graph.nodes[callee].is_test {
                continue;
            }
            parent.entry(callee).or_insert_with(|| {
                queue.push_back(callee);
                Some(node)
            });
        }
    }
    report.reachable_fns = reachable.len();

    // Per-file suppression sets, built lazily.
    let mut suppressions: HashMap<usize, SuppressionSet> = HashMap::new();

    for &node_id in &reachable {
        let node = &graph.nodes[node_id];
        report.unresolved_calls += graph.unresolved[node_id].len();
        let file = &workspace.files[node.file_index];
        let Some((start, end)) = file.items.fns[node.item_index].body else {
            continue;
        };
        let chain = chain_to(&graph, &parent, node_id);
        let set = suppressions
            .entry(node.file_index)
            .or_insert_with(|| SuppressionSet::collect(file));
        for (line, construct, message) in scan_constructs(file, start, end) {
            if set.allows(PANIC_PATH_RULE, line) {
                report.suppressed += 1;
            } else {
                report.findings.push(PanicFinding {
                    file: file.path.clone(),
                    line,
                    construct,
                    message,
                    chain: chain.clone(),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.entry_points.sort();
    report
}

/// Reconstructs the qualified-name chain entry → … → `node`.
fn chain_to(graph: &CallGraph, parent: &HashMap<usize, Option<usize>>, node: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cursor = Some(node);
    while let Some(id) = cursor {
        chain.push(graph.nodes[id].qualified_name());
        cursor = parent.get(&id).copied().flatten();
    }
    chain.reverse();
    chain
}

/// Scans one function body for panicking constructs.
fn scan_constructs(
    file: &SourceFile,
    start: usize,
    end: usize,
) -> Vec<(usize, PanicConstruct, String)> {
    let source = &file.source;
    let tokens = &file.tokens;
    let idx: Vec<usize> = (start..=end.min(tokens.len().saturating_sub(1)))
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let text_at = |k: usize| tokens[idx[k]].text(source);
    let kind_at = |k: usize| tokens[idx[k]].kind;
    let mut found = Vec::new();
    for k in 0..idx.len() {
        let token = &tokens[idx[k]];
        let text = token.text(source);
        match token.kind {
            TokenKind::Ident => {
                // Macro invocations: `name!(…)`, `name![…]`, `name!{…}`.
                if PANIC_MACROS.contains(&text)
                    && idx.get(k + 1).is_some_and(|_| text_at(k + 1) == "!")
                    && idx
                        .get(k + 2)
                        .is_some_and(|_| matches!(text_at(k + 2), "(" | "[" | "{"))
                {
                    found.push((
                        token.line,
                        PanicConstruct::PanicMacro,
                        format!("{text}! on a recovery-reachable path"),
                    ));
                }
                // `.unwrap()` / `.expect(…)` and friends.
                if UNWRAP_METHODS.contains(&text)
                    && k > 0
                    && text_at(k - 1) == "."
                    && idx.get(k + 1).is_some_and(|_| text_at(k + 1) == "(")
                {
                    found.push((
                        token.line,
                        PanicConstruct::Unwrap,
                        format!(".{text}() on a recovery-reachable path"),
                    ));
                }
            }
            TokenKind::Punct => match text {
                "[" if k > 0 && is_index_base(kind_at(k - 1), text_at(k - 1)) => {
                    found.push((
                        token.line,
                        PanicConstruct::Indexing,
                        format!("indexing `{}[…]` may panic out of bounds", text_at(k - 1)),
                    ));
                }
                "/" | "%"
                    if k > 0
                        && is_value_end(kind_at(k - 1), text_at(k - 1))
                        && !has_float_evidence(source, tokens, &idx, k)
                        && !divisor_is_nonzero_literal(source, tokens, &idx, k) =>
                {
                    let op = if text == "/" { "division" } else { "remainder" };
                    found.push((
                        token.line,
                        PanicConstruct::IntDivision,
                        format!("integer {op} `{text}` with a non-literal divisor may panic"),
                    ));
                }
                _ => {}
            },
            _ => {}
        }
    }
    found
}

/// Can the previous token end an indexable expression?
fn is_index_base(kind: TokenKind, text: &str) -> bool {
    match kind {
        TokenKind::Ident => !crate::callgraph::is_expression_keyword(text),
        TokenKind::Punct => matches!(text, ")" | "]" | "?"),
        TokenKind::Str => true, // "literal"[i] — pathological but panics
        _ => false,
    }
}

/// Can the previous token end a value (making `/` binary, not part of
/// some other construct)?
fn is_value_end(kind: TokenKind, text: &str) -> bool {
    match kind {
        TokenKind::Ident => !crate::callgraph::is_expression_keyword(text),
        TokenKind::Int | TokenKind::Float => true,
        TokenKind::Punct => matches!(text, ")" | "]" | "?"),
        _ => false,
    }
}

/// Looks for evidence that a `/` or `%` at position `k` operates on
/// floats: a float literal or an `f32`/`f64` token on the operator's
/// line, or inside the immediately-adjacent parenthesized operands.
/// (Type inference is out of scope; a line mixing genuine integer
/// division with float arithmetic is exceedingly rare in this tree,
/// and the cost of a miss is a suppressed-with-justification line,
/// not a missed abort.)
fn has_float_evidence(
    source: &str,
    tokens: &[crate::parse::lexer::Token],
    idx: &[usize],
    k: usize,
) -> bool {
    let is_float_token = |i: usize| -> bool {
        let token = &tokens[idx[i]];
        match token.kind {
            TokenKind::Float => true,
            TokenKind::Ident => matches!(token.text(source), "f32" | "f64"),
            _ => false,
        }
    };
    // Anything float-ish on the same line.
    let line = tokens[idx[k]].line;
    for j in (0..k).rev() {
        if tokens[idx[j]].line != line {
            break;
        }
        if is_float_token(j) {
            return true;
        }
    }
    for j in k + 1..idx.len() {
        if tokens[idx[j]].line != line {
            break;
        }
        if is_float_token(j) {
            return true;
        }
    }
    // `(… 1.0 …) / x` — scan the parenthesized group ending just left.
    if k > 0 && tokens[idx[k - 1]].text(source) == ")" {
        let mut depth = 0i32;
        for j in (0..k).rev() {
            match tokens[idx[j]].text(source) {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if is_float_token(j) {
                        return true;
                    }
                }
            }
        }
    }
    // `x / (… as f64 …)` — scan the group starting just right.
    if k + 1 < idx.len() && tokens[idx[k + 1]].text(source) == "(" {
        let mut depth = 0i32;
        for (j, _) in idx.iter().enumerate().skip(k + 1) {
            match tokens[idx[j]].text(source) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if is_float_token(j) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Is the divisor a non-zero integer literal (`x / 2` cannot panic)?
fn divisor_is_nonzero_literal(
    source: &str,
    tokens: &[crate::parse::lexer::Token],
    idx: &[usize],
    k: usize,
) -> bool {
    // Skip the `=` of a compound `/=` so `x /= 4` sees the `4`.
    let mut next = k + 1;
    if next < idx.len() && tokens[idx[next]].text(source) == "=" {
        next += 1;
    }
    let Some(&token_index) = idx.get(next) else {
        return false;
    };
    let token = &tokens[token_index];
    if token.kind != TokenKind::Int {
        return false;
    }
    // The literal must be the whole divisor: `x / 2` is safe, but in
    // `x / 2 - y` the divisor is still just `2`, also safe. Precedence
    // means a trailing `+`/`-`/`*` never changes the divisor.
    matches!(int_value(token.text(source)), Some(v) if v != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::Workspace;

    fn run(src: &str, entries: &[EntryPoint]) -> PanicPathReport {
        let ws = Workspace::from_sources(&[("ftl", "crates/ftl/src/lib.rs", src)]);
        run_panic_path(&ws, entries)
    }

    fn entry(owner: &str, name: &str) -> Vec<EntryPoint> {
        vec![EntryPoint::method(owner, name)]
    }

    #[test]
    fn reachable_panics_are_found_with_chains() {
        let src = "impl Ftl {\n    pub fn recover(&mut self) { self.step(); }\n    fn step(&mut self) { self.deep(); }\n    fn deep(&mut self) { panic!(\"boom\"); }\n    fn unrelated(&mut self) { panic!(\"not reachable\"); }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        assert_eq!(report.findings.len(), 1);
        let finding = &report.findings[0];
        assert_eq!(finding.line, 4);
        assert_eq!(finding.construct, PanicConstruct::PanicMacro);
        assert_eq!(
            finding.chain,
            vec!["Ftl::recover", "Ftl::step", "Ftl::deep"]
        );
        assert_eq!(report.reachable_fns, 3);
    }

    #[test]
    fn all_construct_kinds_fire() {
        let src = "impl Ftl {\n    pub fn recover(&mut self, v: Vec<u64>, n: u64) -> u64 {\n        let a = v[0];\n        let b = v.first().unwrap();\n        assert!(n > 0);\n        a / n + *b % n\n    }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        let kinds: Vec<PanicConstruct> = report.findings.iter().map(|f| f.construct).collect();
        assert!(kinds.contains(&PanicConstruct::Indexing));
        assert!(kinds.contains(&PanicConstruct::Unwrap));
        assert!(kinds.contains(&PanicConstruct::PanicMacro));
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == PanicConstruct::IntDivision)
                .count(),
            2
        );
    }

    #[test]
    fn float_division_and_literal_divisors_are_exempt() {
        let src = "impl Ftl {\n    pub fn recover(&self, x: u64, r: f64) -> u64 {\n        let _a = r / 3.5;\n        let _b = (1.0 - r) / (1.0 + r);\n        let _c = x as f64 / 2.0;\n        let half = x / 2;\n        let _d = x as f64 / r;\n        half / 4\n    }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        assert!(
            report.findings.is_empty(),
            "unexpected: {:?}",
            report.findings
        );
    }

    #[test]
    fn debug_assert_and_test_fns_are_exempt() {
        let src = "impl Ftl {\n    pub fn recover(&self, x: u64) {\n        debug_assert!(x > 0);\n        debug_assert_eq!(x, x);\n    }\n}\n#[cfg(test)]\nmod tests {\n    fn recover_helper() { panic!(\"test only\"); }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn suppressions_silence_and_count() {
        let src = "impl Ftl {\n    pub fn recover(&self, v: &[u8]) -> u8 {\n        // sos-lint: allow(panic-path, \"index bounded by phase-1 probe\")\n        v[0]\n    }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn missing_entry_points_are_reported() {
        let report = run(
            "impl Ftl { pub fn recover(&self) {} }",
            &[
                EntryPoint::method("Ftl", "recover"),
                EntryPoint::method("Ftl", "gone_fn"),
            ],
        );
        assert_eq!(report.entry_points, vec!["Ftl::recover"]);
        assert_eq!(report.missing_entry_points, vec!["Ftl::gone_fn"]);
    }

    #[test]
    fn vec_macro_and_attributes_are_not_indexing() {
        let src = "impl Ftl {\n    pub fn recover(&self) {\n        let _v: Vec<u8> = vec![0; 4];\n        let _a = [0u8; 8];\n        #[allow(unused)]\n        let _b: [u8; 2] = [1, 2];\n    }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn free_function_entry_points_resolve_and_traverse() {
        let src = "pub fn run_tasks(n: u64) -> u64 { helper(n) }\nfn helper(n: u64) -> u64 { let v = vec![1u64]; v[0] + n }\n";
        let report = run(src, &[EntryPoint::function("run_tasks")]);
        assert_eq!(report.entry_points, vec!["run_tasks"]);
        assert!(report.missing_entry_points.is_empty());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].construct, PanicConstruct::Indexing);
        assert_eq!(report.findings[0].chain, vec!["run_tasks", "helper"]);
    }

    #[test]
    fn unresolved_calls_are_counted() {
        let src = "impl Ftl {\n    pub fn recover(&self, v: Vec<u8>) { v.contains(&1); }\n}\n";
        let report = run(src, &entry("Ftl", "recover"));
        assert_eq!(report.unresolved_calls, 1);
    }
}
