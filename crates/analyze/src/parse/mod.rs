//! Source parsing for the static-analysis pipeline: a spanned Rust
//! [`lexer`], an [`items`] extractor (functions, impl blocks, test
//! regions), and the [`Workspace`] loader that applies both to every
//! crate source in the repository.
//!
//! Everything downstream — the lint rules, the call graph and the
//! panic-freedom pass — consumes [`SourceFile`]s from here, so string,
//! comment and `cfg(test)` handling exists in exactly one place.

pub mod items;
pub mod lexer;

use items::FileItems;
use lexer::Token;
use std::fs;
use std::path::{Path, PathBuf};

/// One parsed source file: text, tokens and structural items.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root (e.g. `crates/ftl/src/gc.rs`).
    pub path: PathBuf,
    /// The short crate directory name (`ftl`, `flash`, …).
    pub crate_name: String,
    /// The file's full text.
    pub source: String,
    /// The complete token stream.
    pub tokens: Vec<Token>,
    /// Extracted functions and test regions.
    pub items: FileItems,
}

impl SourceFile {
    /// Lexes and structures one source text.
    pub fn parse(path: PathBuf, crate_name: String, source: String) -> Self {
        let tokens = lexer::lex(&source);
        let items = items::extract(&source, &tokens);
        SourceFile {
            path,
            crate_name,
            source,
            tokens,
            items,
        }
    }

    /// The raw text of 1-based `line` (empty when out of range).
    pub fn line_text(&self, line: usize) -> &str {
        self.source
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
    }
}

/// Every parsed source file under `crates/*/src`, the unit the lint
/// rules and the call graph operate on.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Parsed files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads and parses every `.rs` file under `root/crates/*/src`.
    /// Unreadable files are skipped (the tree may be mid-edit); the
    /// tier-1 build catches anything truly broken.
    pub fn load(root: &Path) -> Workspace {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let Ok(entries) = fs::read_dir(&crates_dir) else {
            return Workspace { files };
        };
        let mut crate_dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let crate_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            let mut paths = Vec::new();
            collect_rust_files(&crate_dir.join("src"), &mut paths);
            for path in paths {
                let Ok(source) = fs::read_to_string(&path) else {
                    continue;
                };
                let relative = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                files.push(SourceFile::parse(relative, crate_name.clone(), source));
            }
        }
        Workspace { files }
    }

    /// Builds a workspace from in-memory sources — the unit-test entry
    /// point. Each element is `(crate_name, relative_path, source)`.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> Workspace {
        let files = sources
            .iter()
            .map(|(crate_name, path, source)| {
                SourceFile::parse(
                    PathBuf::from(path),
                    crate_name.to_string(),
                    source.to_string(),
                )
            })
            .collect();
        Workspace { files }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic output.
pub fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}
