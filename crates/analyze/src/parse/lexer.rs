//! A spanned Rust lexer for the workspace's own sources.
//!
//! The build environment has no registry access, so instead of `syn` or
//! `proc-macro2` the analyzer carries its own lexer. It produces a flat
//! token stream in which **every byte of the input is accounted for**:
//! each token records its byte span, line and column, comments are
//! tokens (the suppression parser and the pub-docs rule need them), and
//! string/char literals are single tokens, so no downstream pass ever
//! has to reason about quoting or escaping again. This replaces the old
//! line-oriented `clean_source` blanking pass: string/comment handling
//! now lives in exactly one place.
//!
//! The lexer is deliberately permissive: on malformed input (an
//! unterminated string, a stray byte) it still terminates and spans
//! every byte, because the linter must never panic on the tree it is
//! auditing. It handles the full token surface the workspace uses:
//! nested block comments, doc comments (`///`, `//!`, `/**`, `/*!`),
//! raw strings with hashes (`r#"…"#`), byte strings, char literals vs.
//! lifetimes, numeric literals with underscores / base prefixes /
//! exponents / type suffixes, raw identifiers (`r#fn`), and the
//! multi-character operators path analysis cares about (`::`, `->`,
//! `=>`, `..`, `..=`).

use std::fmt;

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers like `r#fn`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// An integer literal (any base, with suffix and underscores).
    Int,
    /// A floating-point literal.
    Float,
    /// A string literal: plain, raw, byte or byte-raw. One token even
    /// when it spans multiple lines.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A non-doc line comment (`// …`).
    LineComment,
    /// A doc comment: `/// …`, `//! …`, `/** … */` or `/*! … */`.
    DocComment,
    /// A non-doc block comment (`/* … */`, possibly nested).
    BlockComment,
    /// Punctuation. Single characters, except the combined operators
    /// `::`, `->`, `=>`, `..`, `..=` and `...`.
    Punct,
}

/// One lexeme with its exact location in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
    /// 1-based column (in characters) of the token's first byte.
    pub col: usize,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// Is this token a comment of any kind?
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::DocComment | TokenKind::BlockComment
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TokenKind::Ident => "ident",
            TokenKind::Lifetime => "lifetime",
            TokenKind::Int => "int",
            TokenKind::Float => "float",
            TokenKind::Str => "str",
            TokenKind::Char => "char",
            TokenKind::LineComment => "line-comment",
            TokenKind::DocComment => "doc-comment",
            TokenKind::BlockComment => "block-comment",
            TokenKind::Punct => "punct",
        };
        f.write_str(name)
    }
}

/// Is `c` a character that can continue an identifier?
pub fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// The cursor the lexer walks: decoded characters with byte offsets.
struct Cursor {
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    /// Total byte length of the source.
    len: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Cursor {
            chars: source.char_indices().collect(),
            pos: 0,
            len: source.len(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, index: usize) -> usize {
        self.chars.get(index).map_or(self.len, |&(b, _)| b)
    }

    fn offset(&self) -> usize {
        self.byte_at(self.pos)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `source` into a complete token stream.
///
/// Guarantees, verified by the workspace self-test:
/// * tokens are in source order and never overlap;
/// * `token.text(source)` is exactly the spanned bytes;
/// * `token.line` equals `1 +` the number of newlines before the span.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cursor = Cursor::new(source);
    let mut tokens = Vec::new();
    while let Some(c) = cursor.peek(0) {
        let start = cursor.offset();
        let line = cursor.line;
        let col = cursor.col;
        let kind = scan_token(&mut cursor, c);
        let Some(kind) = kind else { continue };
        tokens.push(Token {
            kind,
            start,
            end: cursor.offset(),
            line,
            col,
        });
    }
    tokens
}

/// Scans one token starting at `c`; returns `None` for whitespace.
fn scan_token(cursor: &mut Cursor, c: char) -> Option<TokenKind> {
    if c.is_whitespace() {
        cursor.bump();
        return None;
    }
    if c == '/' {
        match cursor.peek(1) {
            Some('/') => return Some(scan_line_comment(cursor)),
            Some('*') => return Some(scan_block_comment(cursor)),
            _ => {}
        }
    }
    if c == 'r' || c == 'b' {
        if let Some(kind) = scan_prefixed_literal(cursor) {
            return Some(kind);
        }
    }
    if is_ident_start(c) {
        cursor.bump();
        while cursor.peek(0).is_some_and(is_ident_continue) {
            cursor.bump();
        }
        return Some(TokenKind::Ident);
    }
    if c.is_ascii_digit() {
        return Some(scan_number(cursor));
    }
    match c {
        '"' => Some(scan_string(cursor)),
        '\'' => Some(scan_quote(cursor)),
        _ => Some(scan_punct(cursor, c)),
    }
}

fn scan_line_comment(cursor: &mut Cursor) -> TokenKind {
    // `///` is an outer doc comment, `//!` an inner one; `////…` is a
    // plain comment (rustdoc's rule).
    let third = cursor.peek(2);
    let fourth = cursor.peek(3);
    let doc = third == Some('!') || (third == Some('/') && fourth != Some('/'));
    while cursor.peek(0).is_some_and(|c| c != '\n') {
        cursor.bump();
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::LineComment
    }
}

fn scan_block_comment(cursor: &mut Cursor) -> TokenKind {
    // `/**` outer doc, `/*!` inner doc — but `/**/` is empty non-doc
    // and `/***/`-style starts are non-doc too.
    let third = cursor.peek(2);
    let fourth = cursor.peek(3);
    let doc = third == Some('!') || (third == Some('*') && fourth != Some('/') && fourth.is_some());
    cursor.bump();
    cursor.bump();
    let mut depth = 1u32;
    while depth > 0 {
        match (cursor.peek(0), cursor.peek(1)) {
            (Some('*'), Some('/')) => {
                depth -= 1;
                cursor.bump();
                cursor.bump();
            }
            (Some('/'), Some('*')) => {
                depth += 1;
                cursor.bump();
                cursor.bump();
            }
            (Some(_), _) => {
                cursor.bump();
            }
            (None, _) => break, // unterminated: tolerate
        }
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::BlockComment
    }
}

/// Handles tokens beginning `r` or `b`: raw strings (`r"…"`, `r#"…"#`),
/// byte strings (`b"…"`), byte-raw strings (`br#"…"#`), byte chars
/// (`b'x'`) and raw identifiers (`r#ident`). Returns `None` when the
/// prefix is just the start of a plain identifier.
fn scan_prefixed_literal(cursor: &mut Cursor) -> Option<TokenKind> {
    let first = cursor.peek(0)?;
    let mut ahead = 1usize;
    if first == 'b' && cursor.peek(ahead) == Some('r') {
        ahead += 1;
    }
    if first == 'b' && cursor.peek(1) == Some('\'') {
        // Byte char literal b'…'.
        cursor.bump();
        cursor.bump();
        scan_char_body(cursor);
        return Some(TokenKind::Char);
    }
    if first == 'b' && cursor.peek(1) == Some('"') {
        cursor.bump();
        return Some(scan_string(cursor));
    }
    // Raw forms: count hashes after the `r`.
    if (first == 'r' && ahead == 1) || (first == 'b' && ahead == 2) {
        let mut hashes = 0usize;
        while cursor.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match cursor.peek(ahead + hashes) {
            Some('"') => {
                for _ in 0..ahead + hashes + 1 {
                    cursor.bump();
                }
                scan_raw_string_body(cursor, hashes);
                return Some(TokenKind::Str);
            }
            Some(c) if first == 'r' && hashes == 1 && is_ident_start(c) => {
                // Raw identifier r#ident.
                cursor.bump();
                cursor.bump();
                while cursor.peek(0).is_some_and(is_ident_continue) {
                    cursor.bump();
                }
                return Some(TokenKind::Ident);
            }
            _ => {}
        }
    }
    None
}

fn scan_raw_string_body(cursor: &mut Cursor, hashes: usize) {
    while let Some(c) = cursor.bump() {
        if c == '"' {
            let mut matched = 0usize;
            while matched < hashes && cursor.peek(0) == Some('#') {
                cursor.bump();
                matched += 1;
            }
            if matched == hashes {
                return;
            }
        }
    }
}

/// Scans a plain (escaped) string starting at the opening quote.
fn scan_string(cursor: &mut Cursor) -> TokenKind {
    cursor.bump(); // opening quote
    while let Some(c) = cursor.bump() {
        match c {
            '\\' => {
                cursor.bump();
            }
            '"' => break,
            _ => {}
        }
    }
    TokenKind::Str
}

/// Scans a char-literal body after the opening `'` has been consumed.
fn scan_char_body(cursor: &mut Cursor) {
    match cursor.bump() {
        Some('\\') => {
            cursor.bump();
            // Multi-char escapes (\x7f, \u{…}) run to the closing quote.
            while cursor.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                cursor.bump();
            }
        }
        Some(_) => {}
        None => return,
    }
    if cursor.peek(0) == Some('\'') {
        cursor.bump();
    }
}

/// Disambiguates `'` between a char literal and a lifetime/label.
fn scan_quote(cursor: &mut Cursor) -> TokenKind {
    let next = cursor.peek(1);
    let after = cursor.peek(2);
    let lifetime = match (next, after) {
        (Some('\\'), _) => false,
        (Some(n), Some('\'')) if n != '\'' => false, // 'x'
        (Some(n), _) if is_ident_start(n) => true,
        _ => false,
    };
    cursor.bump(); // the quote
    if lifetime {
        while cursor.peek(0).is_some_and(is_ident_continue) {
            cursor.bump();
        }
        TokenKind::Lifetime
    } else {
        scan_char_body(cursor);
        TokenKind::Char
    }
}

fn scan_number(cursor: &mut Cursor) -> TokenKind {
    let mut float = false;
    if cursor.peek(0) == Some('0') && matches!(cursor.peek(1), Some('x' | 'o' | 'b')) {
        cursor.bump();
        cursor.bump();
        while cursor
            .peek(0)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            cursor.bump();
        }
    } else {
        while cursor
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == '_')
        {
            cursor.bump();
        }
        // A `.` continues the number only for `1.5` or a trailing `1.`
        // — not `1..2` (range) and not `1.max(…)` (method call).
        if cursor.peek(0) == Some('.') {
            let after = cursor.peek(1);
            let part_of_float = match after {
                Some(c) if c.is_ascii_digit() => true,
                Some('.') => false,
                Some(c) if is_ident_start(c) => false,
                _ => true,
            };
            if part_of_float {
                float = true;
                cursor.bump();
                while cursor
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == '_')
                {
                    cursor.bump();
                }
            }
        }
        if matches!(cursor.peek(0), Some('e' | 'E')) {
            // Exponent only when digits (or sign+digits) follow;
            // otherwise `e` starts a suffix/identifier.
            let (sign, digit) = (cursor.peek(1), cursor.peek(2));
            let exponent = match sign {
                Some(c) if c.is_ascii_digit() => true,
                Some('+' | '-') => digit.is_some_and(|c| c.is_ascii_digit()),
                _ => false,
            };
            if exponent {
                float = true;
                cursor.bump();
                if matches!(cursor.peek(0), Some('+' | '-')) {
                    cursor.bump();
                }
                while cursor
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == '_')
                {
                    cursor.bump();
                }
            }
        }
    }
    // Type suffix (`u8`, `f64`, `usize`…) merges into the literal.
    let mut suffix = String::new();
    while cursor.peek(0).is_some_and(is_ident_continue) {
        suffix.push(cursor.peek(0).unwrap_or(' '));
        cursor.bump();
    }
    if suffix.starts_with('f') {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

fn scan_punct(cursor: &mut Cursor, c: char) -> TokenKind {
    cursor.bump();
    let next = cursor.peek(0);
    match (c, next) {
        (':', Some(':')) | ('-', Some('>')) | ('=', Some('>')) => {
            cursor.bump();
        }
        ('.', Some('.')) => {
            cursor.bump();
            if matches!(cursor.peek(0), Some('=' | '.')) {
                cursor.bump();
            }
        }
        _ => {}
    }
    TokenKind::Punct
}

/// Parses the numeric value of an [`TokenKind::Int`] token's text,
/// ignoring underscores, base prefixes and type suffixes. Returns
/// `None` for values beyond `u128`.
pub fn int_value(text: &str) -> Option<u128> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(hex) = cleaned.strip_prefix("0x") {
        (hex, 16)
    } else if let Some(oct) = cleaned.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = cleaned.strip_prefix("0b") {
        (bin, 2)
    } else {
        (cleaned.as_str(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u128::from_str_radix(&digits[..end], radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(source: &str) -> Vec<(TokenKind, String)> {
        lex(source)
            .into_iter()
            .map(|t| (t.kind, t.text(source).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let got = texts("pub fn f(x: u32) -> u32 { x }");
        let kinds: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            kinds,
            vec!["pub", "fn", "f", "(", "x", ":", "u32", ")", "->", "u32", "{", "x", "}"]
        );
    }

    #[test]
    fn strings_are_single_tokens() {
        let got = texts("let s = \"a // not a comment [0] .unwrap()\";");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("not a comment")));
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " inside"#; let t = 1;"##;
        let got = texts(src);
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quote")));
        assert!(got.iter().any(|(_, t)| t == "1"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let got = texts("let a = b\"bytes\"; let b = b'\\n'; let c = b'x';");
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = texts("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\u{1F600}'; }");
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_keep_their_kinds() {
        let src = "/// doc\n//! inner\n// plain\n/* block */\n/*! inner block */\nfn f() {}\n";
        let got = texts(src);
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::DocComment)
                .count(),
            3
        );
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::LineComment)
                .count(),
            1
        );
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_terminate() {
        let got = texts("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(
            got.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(got.iter().any(|(_, t)| t == "fn"));
    }

    #[test]
    fn numbers_classify_and_parse() {
        let got = texts("let a = 0xFF_u32; let b = 1_000; let c = 1.5e-3; let d = 2f64; let e = 1..4; let f = 3.max(4);");
        let ints: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        let floats: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["0xFF_u32", "1_000", "1", "4", "3", "4"]);
        assert_eq!(floats, vec!["1.5e-3", "2f64"]);
        assert_eq!(int_value("0xFF_u32"), Some(255));
        assert_eq!(int_value("1_000"), Some(1000));
        assert_eq!(int_value("0b101"), Some(5));
        assert_eq!(int_value("0o17"), Some(15));
    }

    #[test]
    fn combined_puncts() {
        let got = texts("a::b -> c => d ..= e .. f");
        let puncts: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "->", "=>", "..=", ".."]);
    }

    #[test]
    fn raw_identifiers() {
        let got = texts("let r#fn = 1;");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn spans_and_lines_are_exact() {
        let src = "fn a() {\n    let s = \"two\nlines\";\n}\n";
        let tokens = lex(src);
        for token in &tokens {
            let newlines_before = src[..token.start].matches('\n').count();
            assert_eq!(token.line, newlines_before + 1, "{token:?}");
        }
        let mut last_end = 0usize;
        for token in &tokens {
            assert!(token.start >= last_end, "overlap at {token:?}");
            last_end = token.end;
        }
    }

    #[test]
    fn unterminated_input_still_lexes() {
        for src in ["let s = \"unterminated", "/* open", "let c = '"] {
            let tokens = lex(src);
            assert!(!tokens.is_empty());
        }
    }
}
