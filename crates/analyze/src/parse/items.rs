//! Item extraction over the token stream: function definitions, `impl`
//! blocks, inline modules and `#[cfg(test)]` regions, discovered by
//! brace structure rather than by line prefixes.
//!
//! This is not a full parser — it is exactly the structural layer the
//! analyzer needs: *which functions exist, who owns them, where their
//! bodies start and end, and which lines are test-only*. A single pass
//! walks the non-comment tokens with a scope stack; every `{` pushes a
//! scope (annotated when it is the body of a pending `fn` / `impl` /
//! `mod` / `trait` item), every `}` pops one.
//!
//! Test regions cover all attribute forms whose predicate requires
//! `cfg(test)` to be satisfied on the obvious path: `#[cfg(test)]`,
//! `#[cfg(any(test, …))]` and `#[cfg(all(test, …))]` — any `test`
//! ident inside the `cfg` predicate that is not wrapped in `not(…)`
//! marks the item as test-gated. `#[test]` marks the function itself.

use super::lexer::{Token, TokenKind};

/// One function (or method) definition found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` or `trait` type the function is defined on, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (or of the signature
    /// for bodyless declarations).
    pub end_line: usize,
    /// Whether the function is test-only: inside a `cfg(test)` region
    /// or carrying a `#[test]` attribute.
    pub is_test: bool,
    /// Whether the parameter list has a `self` receiver — i.e. the fn
    /// is callable with method syntax. Associated functions without
    /// `self` (constructors, `SuppressionSet::collect(file)`) are not.
    pub has_self: bool,
    /// Token-index range of the body, `[open brace, close brace]`
    /// inclusive. `None` for bodyless trait/extern declarations.
    pub body: Option<(usize, usize)>,
}

impl FnItem {
    /// `Owner::name` or bare `name` — the label used in call chains.
    pub fn qualified_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Structural facts about one file: its functions and test regions.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Every function definition, in source order.
    pub fns: Vec<FnItem>,
    /// Inclusive 1-based line ranges gated behind `cfg(test)` (or a
    /// `#[test]` attribute), including the attribute lines themselves.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileItems {
    /// Is `line` inside a test-only region?
    pub fn line_in_test(&self, line: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| line >= start && line <= end)
    }
}

/// Attribute facts accumulated while scanning an item's prelude.
#[derive(Debug, Clone, Copy, Default)]
struct AttrPending {
    /// Line of the first attribute in the run.
    start_line: usize,
    /// A `cfg` predicate requiring `test` was seen.
    cfg_test: bool,
    /// A bare `#[test]` attribute was seen.
    fn_test: bool,
}

/// The item kind a scanned keyword opened, awaiting its `{` or `;`.
#[derive(Debug, Clone)]
enum PendingKind {
    Fn {
        name: Option<String>,
        line: usize,
        has_self: bool,
    },
    Impl {
        idents: Vec<String>,
        angle: i32,
        done: bool,
    },
    Mod,
    Trait {
        name: Option<String>,
    },
    /// Any other attributed item (`use`, `struct`, `static`, …): only
    /// tracked so its cfg(test) span can be recorded.
    Other,
}

#[derive(Debug, Clone)]
struct Pending {
    kind: PendingKind,
    attr: Option<AttrPending>,
    paren_base: i32,
    bracket_base: i32,
}

/// One open `{` on the scope stack.
#[derive(Debug, Clone)]
struct Scope {
    owner: Option<String>,
    is_test: bool,
    /// This scope is the root of a test region whose span should be
    /// recorded when it closes.
    test_root: bool,
    start_line: usize,
    /// Index into `FileItems::fns` when this scope is a function body.
    fn_index: Option<usize>,
}

/// Keywords that may precede an item keyword within its prelude.
const PRELUDE_WORDS: &[&str] = &[
    "pub", "crate", "unsafe", "async", "const", "extern", "default",
];

/// Extracts functions and test regions from a lexed file.
pub fn extract(source: &str, tokens: &[Token]) -> FileItems {
    let mut items = FileItems::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut attr: Option<AttrPending> = None;
    let mut paren_depth = 0i32;
    let mut bracket_depth = 0i32;
    let mut i = 0usize;
    while i < tokens.len() {
        let token = &tokens[i];
        if token.is_comment() {
            i += 1;
            continue;
        }
        let text = token.text(source);
        // Attribute groups are consumed whole so their contents never
        // disturb depth tracking or keyword detection.
        if token.kind == TokenKind::Punct && text == "#" {
            if let Some((inner, after)) = attr_group(source, tokens, i) {
                let entry = attr.get_or_insert(AttrPending {
                    start_line: token.line,
                    ..AttrPending::default()
                });
                let (cfg_test, fn_test) = classify_attr(&inner);
                entry.cfg_test |= cfg_test;
                entry.fn_test |= fn_test;
                i = after;
                continue;
            }
        }
        match token.kind {
            TokenKind::Ident => {
                let upgrade = matches!(
                    pending,
                    None | Some(Pending {
                        kind: PendingKind::Other,
                        ..
                    })
                );
                match text {
                    "fn" if upgrade => {
                        let carried = pending.take().and_then(|p| p.attr).or_else(|| attr.take());
                        pending = Some(Pending {
                            kind: PendingKind::Fn {
                                name: None,
                                line: token.line,
                                has_self: false,
                            },
                            attr: carried,
                            paren_base: paren_depth,
                            bracket_base: bracket_depth,
                        });
                    }
                    "impl" if upgrade => {
                        let carried = pending.take().and_then(|p| p.attr).or_else(|| attr.take());
                        pending = Some(Pending {
                            kind: PendingKind::Impl {
                                idents: Vec::new(),
                                angle: 0,
                                done: false,
                            },
                            attr: carried,
                            paren_base: paren_depth,
                            bracket_base: bracket_depth,
                        });
                    }
                    "mod" if upgrade => {
                        let carried = pending.take().and_then(|p| p.attr).or_else(|| attr.take());
                        pending = Some(Pending {
                            kind: PendingKind::Mod,
                            attr: carried,
                            paren_base: paren_depth,
                            bracket_base: bracket_depth,
                        });
                    }
                    "trait" if upgrade => {
                        let carried = pending.take().and_then(|p| p.attr).or_else(|| attr.take());
                        pending = Some(Pending {
                            kind: PendingKind::Trait { name: None },
                            attr: carried,
                            paren_base: paren_depth,
                            bracket_base: bracket_depth,
                        });
                    }
                    _ => match pending.as_mut() {
                        Some(Pending {
                            kind: PendingKind::Fn { name, has_self, .. },
                            paren_base,
                            ..
                        }) => {
                            if name.is_none() {
                                *name = Some(text.to_string());
                            } else if text == "self" && paren_depth > *paren_base {
                                *has_self = true;
                            }
                        }
                        Some(Pending {
                            kind:
                                PendingKind::Impl {
                                    idents,
                                    angle,
                                    done,
                                },
                            ..
                        }) if *angle == 0 => {
                            if text == "for" {
                                idents.clear();
                            } else if text == "where" {
                                *done = true;
                            } else if !*done && text != "dyn" && text != "unsafe" {
                                idents.push(text.to_string());
                            }
                        }
                        Some(Pending {
                            kind: PendingKind::Trait { name },
                            ..
                        }) if name.is_none() => *name = Some(text.to_string()),
                        None if attr.is_some() && !PRELUDE_WORDS.contains(&text) => {
                            // Some other attributed item (`use`, `struct`,
                            // `static`…): keep the attr until `{` or `;`.
                            pending = Some(Pending {
                                kind: PendingKind::Other,
                                attr: attr.take(),
                                paren_base: paren_depth,
                                bracket_base: bracket_depth,
                            });
                        }
                        _ => {}
                    },
                }
            }
            TokenKind::Punct => match text {
                "(" => {
                    // `fn(...)` with no name is a function-pointer type,
                    // not a definition.
                    if matches!(
                        pending,
                        Some(Pending {
                            kind: PendingKind::Fn { name: None, .. },
                            ..
                        })
                    ) {
                        pending = None;
                    }
                    paren_depth += 1;
                }
                ")" => paren_depth -= 1,
                "[" => bracket_depth += 1,
                "]" => bracket_depth -= 1,
                "<" => {
                    if let Some(Pending {
                        kind: PendingKind::Impl { angle, .. },
                        ..
                    }) = pending.as_mut()
                    {
                        *angle += 1;
                    }
                }
                ">" => {
                    if let Some(Pending {
                        kind: PendingKind::Impl { angle, .. },
                        ..
                    }) = pending.as_mut()
                    {
                        *angle = (*angle - 1).max(0);
                    }
                }
                "{" => {
                    let inherited_owner = scopes.last().and_then(|s| s.owner.clone());
                    let inherited_test = scopes.last().is_some_and(|s| s.is_test);
                    let at_base = pending.as_ref().is_some_and(|p| {
                        p.paren_base == paren_depth && p.bracket_base == bracket_depth
                    });
                    let scope = if at_base {
                        let taken = pending.take();
                        match taken {
                            Some(p) => pending_scope(
                                p,
                                token,
                                inherited_owner,
                                inherited_test,
                                &mut items,
                                i,
                            ),
                            None => inherit_scope(inherited_owner, inherited_test, token.line),
                        }
                    } else {
                        inherit_scope(inherited_owner, inherited_test, token.line)
                    };
                    scopes.push(scope);
                }
                "}" => {
                    pending = None;
                    if let Some(scope) = scopes.pop() {
                        if let Some(index) = scope.fn_index {
                            items.fns[index].end_line = token.line;
                            if let Some((start, _)) = items.fns[index].body {
                                items.fns[index].body = Some((start, i));
                            }
                        }
                        if scope.test_root {
                            items.test_spans.push((scope.start_line, token.line));
                        }
                    }
                }
                ";" => {
                    let at_base = pending.as_ref().is_some_and(|p| {
                        p.paren_base == paren_depth && p.bracket_base == bracket_depth
                    });
                    if at_base {
                        if let Some(p) = pending.take() {
                            let attr_test = p.attr.is_some_and(|a| a.cfg_test || a.fn_test);
                            let in_test = scopes.last().is_some_and(|s| s.is_test);
                            if let PendingKind::Fn {
                                name: Some(name),
                                line,
                                has_self,
                            } = &p.kind
                            {
                                // Bodyless declaration (trait / extern).
                                items.fns.push(FnItem {
                                    name: name.clone(),
                                    owner: scopes.last().and_then(|s| s.owner.clone()),
                                    line: *line,
                                    end_line: token.line,
                                    is_test: in_test || attr_test,
                                    has_self: *has_self,
                                    body: None,
                                });
                            }
                            if attr_test && !in_test {
                                let start = p.attr.map_or(token.line, |a| a.start_line);
                                items.test_spans.push((start, token.line));
                            }
                        }
                    }
                }
                // A comma at item depth ends field/arm attributes
                // that never grew into a braced item.
                "," if pending.as_ref().is_some_and(|p| {
                    matches!(p.kind, PendingKind::Other)
                        && p.paren_base == paren_depth
                        && p.bracket_base == bracket_depth
                }) =>
                {
                    pending = None;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    items.test_spans.sort_unstable();
    items
}

/// Builds the scope a pending item's `{` opens, recording the item.
fn pending_scope(
    p: Pending,
    brace: &Token,
    inherited_owner: Option<String>,
    inherited_test: bool,
    items: &mut FileItems,
    brace_index: usize,
) -> Scope {
    let attr_test = p.attr.is_some_and(|a| a.cfg_test || a.fn_test);
    let is_test = inherited_test || attr_test;
    let test_root = attr_test && !inherited_test;
    let start_line = p.attr.map_or(brace.line, |a| a.start_line);
    match p.kind {
        PendingKind::Fn {
            name,
            line,
            has_self,
        } => {
            let name = name.unwrap_or_else(|| "<anonymous>".to_string());
            items.fns.push(FnItem {
                name,
                owner: inherited_owner.clone(),
                line,
                end_line: line,
                is_test,
                has_self,
                body: Some((brace_index, brace_index)),
            });
            Scope {
                owner: inherited_owner,
                is_test,
                test_root,
                start_line: p.attr.map_or(line, |a| a.start_line),
                fn_index: Some(items.fns.len() - 1),
            }
        }
        PendingKind::Impl { idents, .. } => Scope {
            owner: idents.last().cloned().or(inherited_owner),
            is_test,
            test_root,
            start_line,
            fn_index: None,
        },
        PendingKind::Trait { name } => Scope {
            owner: name.or(inherited_owner),
            is_test,
            test_root,
            start_line,
            fn_index: None,
        },
        PendingKind::Mod => Scope {
            owner: None,
            is_test,
            test_root,
            start_line,
            fn_index: None,
        },
        PendingKind::Other => Scope {
            owner: inherited_owner,
            is_test,
            test_root,
            start_line,
            fn_index: None,
        },
    }
}

fn inherit_scope(owner: Option<String>, is_test: bool, line: usize) -> Scope {
    Scope {
        owner,
        is_test,
        test_root: false,
        start_line: line,
        fn_index: None,
    }
}

/// Consumes an attribute group `#[…]` (or inner `#![…]`) starting at
/// token `i`; returns the inner token texts and the index just past the
/// closing `]`.
fn attr_group(source: &str, tokens: &[Token], i: usize) -> Option<(Vec<String>, usize)> {
    let mut j = i + 1;
    while j < tokens.len() && tokens[j].is_comment() {
        j += 1;
    }
    if j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text(source) == "!" {
        j += 1;
        while j < tokens.len() && tokens[j].is_comment() {
            j += 1;
        }
    }
    if j >= tokens.len() || tokens[j].text(source) != "[" {
        return None;
    }
    let mut depth = 0i32;
    let mut inner = Vec::new();
    while j < tokens.len() {
        let text = tokens[j].text(source);
        if tokens[j].kind == TokenKind::Punct {
            match text {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((inner, j + 1));
                    }
                }
                _ => {}
            }
        }
        if depth > 0 && !(depth == 1 && text == "[") {
            inner.push(text.to_string());
        }
        j += 1;
    }
    None
}

/// Classifies an attribute's inner tokens: `(requires cfg(test),
/// is #[test])`. A `test` ident anywhere inside a `cfg` predicate
/// counts unless it sits inside `not(…)`.
fn classify_attr(inner: &[String]) -> (bool, bool) {
    let first = inner.first().map(String::as_str);
    if first == Some("test") && inner.len() == 1 {
        return (false, true);
    }
    if first != Some("cfg") {
        return (false, false);
    }
    let mut not_stack: Vec<bool> = Vec::new();
    let mut cfg_test = false;
    let mut k = 1usize;
    while k < inner.len() {
        let word = inner[k].as_str();
        match word {
            "(" => not_stack.push(inner.get(k.wrapping_sub(1)).is_some_and(|w| w == "not")),
            ")" => {
                not_stack.pop();
            }
            "test" if !not_stack.iter().any(|&n| n) => cfg_test = true,
            _ => {}
        }
        k += 1;
    }
    (cfg_test, false)
}

#[cfg(test)]
mod tests {
    use super::super::lexer::lex;
    use super::*;

    fn items_of(src: &str) -> FileItems {
        extract(src, &lex(src))
    }

    #[test]
    fn free_and_method_fns_are_found() {
        let src =
            "fn free() {}\nimpl Ftl {\n    fn method(&self) {}\n    pub fn other(&self) {}\n}\n";
        let items = items_of(src);
        let names: Vec<String> = items.fns.iter().map(|f| f.qualified_name()).collect();
        assert_eq!(names, vec!["free", "Ftl::method", "Ftl::other"]);
        assert_eq!(items.fns[1].line, 3);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let src = "impl fmt::Display for Violation {\n    fn fmt(&self) {}\n}\nimpl<'a> Iterator for StripeIter<'a> {\n    fn next(&mut self) {}\n}\n";
        let items = items_of(src);
        let names: Vec<String> = items.fns.iter().map(|f| f.qualified_name()).collect();
        assert_eq!(names, vec!["Violation::fmt", "StripeIter::next"]);
    }

    #[test]
    fn trait_default_methods_and_declarations() {
        let src =
            "trait Auditor {\n    fn name(&self) -> &str;\n    fn audit(&self) -> u32 { 0 }\n}\n";
        let items = items_of(src);
        assert_eq!(items.fns.len(), 2);
        assert_eq!(items.fns[0].qualified_name(), "Auditor::name");
        assert!(items.fns[0].body.is_none());
        assert_eq!(items.fns[1].qualified_name(), "Auditor::audit");
        assert!(items.fns[1].body.is_some());
    }

    #[test]
    fn cfg_test_mod_marks_its_whole_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() {}\n}\nfn after() {}\n";
        let items = items_of(src);
        assert!(!items.line_in_test(1));
        for line in 2..=7 {
            assert!(items.line_in_test(line), "line {line}");
        }
        assert!(!items.line_in_test(8));
        let t = items.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
        let live = items.fns.iter().find(|f| f.name == "live").expect("live");
        assert!(!live.is_test);
    }

    #[test]
    fn cfg_any_and_all_forms_count_as_test() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() {}\n#[cfg(all(test, unix))]\nmod both {\n    fn inner() {}\n}\n#[cfg(not(test))]\nfn live() {}\n#[cfg(any(not(test), unix))]\nfn also_live() {}\n";
        let items = items_of(src);
        assert!(items.line_in_test(1) && items.line_in_test(2));
        assert!(items.line_in_test(3) && items.line_in_test(5));
        assert!(!items.line_in_test(8), "not(test) is not a test region");
        assert!(!items.line_in_test(10), "test under not(…) does not count");
        assert!(
            items
                .fns
                .iter()
                .find(|f| f.name == "helper")
                .expect("helper")
                .is_test
        );
        assert!(
            !items
                .fns
                .iter()
                .find(|f| f.name == "live")
                .expect("live")
                .is_test
        );
    }

    #[test]
    fn cfg_test_single_line_item() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let items = items_of(src);
        assert!(items.line_in_test(1) && items.line_in_test(2));
        assert!(!items.line_in_test(3));
    }

    #[test]
    fn fn_pointer_types_are_not_definitions() {
        let src = "struct S {\n    callback: fn(u32) -> u32,\n}\nfn real() {}\n";
        let items = items_of(src);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }

    #[test]
    fn nested_fns_and_expression_braces() {
        let src = "fn outer() {\n    let x = { 1 };\n    fn inner() {}\n    match x {\n        1 => {}\n        _ => {}\n    }\n}\n";
        let items = items_of(src);
        let names: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        assert_eq!(items.fns[0].end_line, 8);
    }

    #[test]
    fn body_ranges_cover_the_braces() {
        let src = "fn f(x: u32) -> u32 {\n    x + 1\n}\n";
        let tokens = lex(src);
        let items = extract(src, &tokens);
        let (start, end) = items.fns[0].body.expect("body");
        assert_eq!(tokens[start].text(src), "{");
        assert_eq!(tokens[end].text(src), "}");
        assert!(end > start);
    }

    #[test]
    fn attributes_between_cfg_test_and_item_are_covered() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct Helper {\n    x: u32,\n}\n";
        let items = items_of(src);
        for line in 1..=5 {
            assert!(items.line_in_test(line), "line {line}");
        }
    }
}
