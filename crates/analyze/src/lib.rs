//! # sos-analyze — invariant auditors and a repo-specific lint runner
//!
//! Static and dynamic analysis for the SOS reproduction of *"Degrading
//! Data to Save the Planet"* (HotOS '23). Three layers:
//!
//! * **Invariant auditors** ([`auditors`]) — walk read-only snapshots of
//!   simulator state ([`sos_ftl::FtlState`], [`sos_core::CoreState`])
//!   and verify translation-layer and partition invariants: L2P
//!   injectivity, valid-page accounting, NAND erase-before-program
//!   discipline, wear monotonicity, SYS/SPARE placement and parity
//!   coverage, and GC live-data conservation. Auditors return structured
//!   [`Violation`] reports; they never panic.
//! * **Audited harnesses** ([`harness`]) — wrap an [`sos_ftl::Ftl`] so
//!   every operation is followed by a full audit (for tests), and drive
//!   an [`sos_core::SosController`] simulation with audits at a
//!   configurable day interval (for long runs). Per-operation checking
//!   is compiled only with the `audit` feature (on by default here).
//!   [`run_crashy_days`] is the crash-sweep variant: it cuts power at a
//!   scheduled device operation every day, remounts via the recovery
//!   path, and re-runs every auditor plus the [`RecoveryAuditor`]
//!   (rebuilt state must equal the pre-crash state minus the *declared*
//!   crash window).
//! * **Static analysis** ([`parse`], [`lint`], [`callgraph`],
//!   [`panicpath`], [`determinism`], `sos-lint` binary) — a spanned
//!   Rust lexer and item extractor feed the lint rules (no
//!   `.unwrap()`/`.expect()` in non-test storage-stack code, no `f32`
//!   in carbon accounting, documented public items in
//!   `sos-core`/`sos-ftl`, no `std::thread::sleep`, no
//!   `todo!()`/`unimplemented!()`/`dbg!()`, no lossy `as` casts in
//!   `sos-flash`/`sos-ftl`), the **panic-freedom pass** (a workspace
//!   call graph walked from the recovery entry points — `Ftl::recover`,
//!   GC, scrub, remount — flagging every reachable panicking construct
//!   with its call chain), and the **determinism pass** (the same graph
//!   walked from the experiment/runner/perf entry points, flagging
//!   every reachable nondeterminism source: map iteration, wall clock,
//!   undeclared env reads, thread identity, entropy-seeded RNGs,
//!   unordered float reduction). Residual risks are suppressed inline
//!   with a mandatory written justification; `sos-lint --format json`
//!   emits the machine-readable report ([`report`]).

pub mod auditors;
pub mod callgraph;
pub mod determinism;
pub mod harness;
pub mod lint;
pub mod panicpath;
pub mod parse;
pub mod report;
pub mod suppress;

pub use auditors::{
    EraseDisciplineAuditor, FtlAuditorSet, GcConservationAuditor, L2pInjectivityAuditor,
    PlacementAuditor, ValidCountAuditor, WearMonotonicityAuditor,
};
pub use callgraph::CallGraph;
pub use determinism::{
    deterministic_entry_points, run_determinism, DeterminismReport, NondetFinding, NondetSource,
};
pub use harness::{
    run_audited_days, run_crashy_days, seed_from_env, AuditFinding, AuditedFtl, CoreAuditorSet,
    CrashSweepReport, RecoveryAuditor,
};
pub use lint::{run_lints, run_lints_on, LintFinding, LintOutcome};
pub use panicpath::{
    device_hot_entry_points, harness_entry_points, recovery_entry_points, run_panic_path,
    EntryPoint, PanicPathReport,
};
pub use parse::Workspace;
pub use report::{JsonReport, ReportFinding, ReportSummary};
pub use suppress::SuppressionSet;

use std::fmt;

/// A single invariant violation found in a state snapshot.
///
/// Violations are data, not panics: harnesses collect them and tests
/// assert on exact variants, so a corrupted snapshot can be checked for
/// producing *precisely* the expected report.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two live LPNs map to the same physical page.
    DuplicateMapping {
        /// First logical page.
        lpn_a: u64,
        /// Second logical page.
        lpn_b: u64,
        /// The shared flat physical page index.
        location: u64,
    },
    /// An LPN maps to a physical page the device never programmed
    /// (a stale or fabricated L2P entry).
    MappedPageNotProgrammed {
        /// The logical page.
        lpn: u64,
        /// The unprogrammed flat physical page index.
        location: u64,
    },
    /// An LPN maps outside the device, or to a page offset beyond the
    /// block's usable range.
    MappingOutOfRange {
        /// The logical page.
        lpn: u64,
        /// The out-of-range flat physical page index.
        location: u64,
    },
    /// The forward map (L2P) and the block reverse map disagree.
    ReverseMapMismatch {
        /// Block whose reverse map is inconsistent.
        block: u64,
        /// Page offset within the block.
        offset: u32,
        /// LPN the forward map says lives here (if any).
        forward: Option<u64>,
        /// LPN the reverse map records here (if any).
        reverse: Option<u64>,
    },
    /// A block's cached valid-page count differs from the number of
    /// LPNs actually mapping into it.
    ValidCountMismatch {
        /// The block.
        block: u64,
        /// The FTL's cached count.
        recorded: u32,
        /// The count recomputed from the reverse map.
        actual: u32,
    },
    /// A page below the block's write pointer is not programmed: the
    /// in-order prefix discipline has a hole (evidence of an erase the
    /// bookkeeping missed).
    ProgrammedPrefixHole {
        /// The block.
        block: u64,
        /// The missing page offset.
        page: u32,
    },
    /// A page at or above the block's write pointer is programmed —
    /// a program that bypassed the erase-before-program discipline
    /// (double program).
    ProgramBeyondWritePointer {
        /// The block.
        block: u64,
        /// The offending page offset.
        page: u32,
        /// The block's write pointer.
        next_page: u32,
    },
    /// A block's write pointer exceeds its usable pages under its
    /// current program mode.
    WritePointerOverflow {
        /// The block.
        block: u64,
        /// The write pointer.
        next_page: u32,
        /// Usable pages under the current mode.
        usable: u32,
    },
    /// A block's program/erase count decreased between snapshots.
    WearRollback {
        /// The block.
        block: u64,
        /// PEC at the previous snapshot.
        previous: u32,
        /// PEC now.
        current: u32,
    },
    /// A block previously retired is back in service.
    RetiredBlockRevived {
        /// The block.
        block: u64,
    },
    /// A partition's program mode is not what the SOS design mandates
    /// (SYS pseudo-QLC, SPARE on physical PLC).
    PartitionModeMismatch {
        /// Which partition ("sys" or "spare").
        partition: &'static str,
        /// Why the mode is wrong.
        detail: String,
    },
    /// A SYS object occupies an LPN inside the reserved parity range.
    SysObjectInParityRange {
        /// The object.
        id: u64,
        /// The offending logical page.
        lpn: u64,
        /// First LPN of the parity range.
        parity_base: u64,
    },
    /// A stripe holding live SYS data has no readable parity page.
    SysParityMissing {
        /// The stripe index.
        stripe: u64,
        /// The parity LPN that should be mapped.
        parity_lpn: u64,
    },
    /// An object references an LPN beyond its partition's logical
    /// capacity.
    ObjectLpnOutOfRange {
        /// The object.
        id: u64,
        /// The offending logical page.
        lpn: u64,
        /// The partition's logical capacity in pages.
        capacity: u64,
    },
    /// Live data (mapped + lost pages) shrank between snapshots by more
    /// than the host trimmed: garbage collection destroyed data.
    LiveDataShrank {
        /// Mapped + lost pages at the previous snapshot.
        before: u64,
        /// Mapped + lost pages now.
        after: u64,
        /// TRIMs issued between the snapshots.
        trims: u64,
    },
    /// An object present in the directory before a crash is missing or
    /// changed placement after the remount. The directory is host
    /// metadata, modelled as crash-safe (journaled), so it must survive
    /// every power cut byte-for-byte.
    RemountObjectMismatch {
        /// The object.
        id: u64,
        /// What changed across the remount.
        detail: String,
    },
    /// A page the directory references is neither mapped after recovery
    /// nor declared lost in the remount report — silent data loss. The
    /// crash-consistency contract is repair-or-declare, never silence.
    UnreportedCrashLoss {
        /// Which partition ("sys" or "spare").
        partition: &'static str,
        /// The owning object.
        id: u64,
        /// The referenced logical page.
        lpn: u64,
    },
    /// A page torn by the power cut (bad OOB CRC) is mapped as valid
    /// data after recovery even though its block was never erased in
    /// between: the recovery scan treated interrupted garbage as a
    /// durable write.
    TornPageResurfaced {
        /// Which partition ("sys" or "spare").
        partition: &'static str,
        /// The torn flat physical page index.
        location: u64,
        /// The logical page mapped onto it.
        lpn: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateMapping { lpn_a, lpn_b, location } => write!(
                f,
                "L2P not injective: LPNs {lpn_a} and {lpn_b} both map to physical page {location}"
            ),
            Violation::MappedPageNotProgrammed { lpn, location } => write!(
                f,
                "stale mapping: LPN {lpn} maps to unprogrammed physical page {location}"
            ),
            Violation::MappingOutOfRange { lpn, location } => {
                write!(f, "LPN {lpn} maps out of range (physical page {location})")
            }
            Violation::ReverseMapMismatch { block, offset, forward, reverse } => write!(
                f,
                "reverse-map mismatch at block {block} page {offset}: forward={forward:?} reverse={reverse:?}"
            ),
            Violation::ValidCountMismatch { block, recorded, actual } => write!(
                f,
                "block {block} valid-count skew: recorded {recorded}, actual {actual}"
            ),
            Violation::ProgrammedPrefixHole { block, page } => write!(
                f,
                "block {block} page {page} unprogrammed below the write pointer"
            ),
            Violation::ProgramBeyondWritePointer { block, page, next_page } => write!(
                f,
                "block {block} page {page} programmed at/after write pointer {next_page} (double program)"
            ),
            Violation::WritePointerOverflow { block, next_page, usable } => write!(
                f,
                "block {block} write pointer {next_page} exceeds usable pages {usable}"
            ),
            Violation::WearRollback { block, previous, current } => write!(
                f,
                "block {block} wear rolled back: PEC {previous} -> {current}"
            ),
            Violation::RetiredBlockRevived { block } => {
                write!(f, "retired block {block} returned to service")
            }
            Violation::PartitionModeMismatch { partition, detail } => {
                write!(f, "{partition} partition mode violates the SOS design: {detail}")
            }
            Violation::SysObjectInParityRange { id, lpn, parity_base } => write!(
                f,
                "SYS object {id} stored at LPN {lpn} inside the parity range (base {parity_base})"
            ),
            Violation::SysParityMissing { stripe, parity_lpn } => write!(
                f,
                "stripe {stripe} has live data but no parity at LPN {parity_lpn}"
            ),
            Violation::ObjectLpnOutOfRange { id, lpn, capacity } => write!(
                f,
                "object {id} references LPN {lpn} beyond partition capacity {capacity}"
            ),
            Violation::LiveDataShrank { before, after, trims } => write!(
                f,
                "GC conservation breach: live pages {before} -> {after} with only {trims} trims"
            ),
            Violation::RemountObjectMismatch { id, detail } => {
                write!(f, "object {id} inconsistent across remount: {detail}")
            }
            Violation::UnreportedCrashLoss { partition, id, lpn } => write!(
                f,
                "silent crash loss: {partition} object {id} LPN {lpn} neither recovered nor declared lost"
            ),
            Violation::TornPageResurfaced { partition, location, lpn } => write!(
                f,
                "torn {partition} page {location} resurfaced as valid data (mapped by LPN {lpn})"
            ),
        }
    }
}

/// An auditor that inspects state snapshots of type `S` and reports
/// invariant violations.
///
/// Auditors may be stateful (`&mut self`): wear monotonicity and GC
/// conservation compare successive snapshots. Stateless auditors simply
/// ignore their history.
pub trait StateAuditor<S> {
    /// A short, stable name for reports.
    fn name(&self) -> &'static str;

    /// Audits one snapshot, returning every violation found (empty when
    /// the snapshot is clean).
    fn audit(&mut self, state: &S) -> Vec<Violation>;
}
