//! Inline lint suppressions with mandatory justifications.
//!
//! Syntax, in a line comment:
//!
//! ```text
//! // sos-lint: allow(<rule>, "<justification>")
//! ```
//!
//! A suppression with no justification string is itself a finding
//! (`bad-suppression`) — the whole point of the mechanism is that every
//! accepted risk carries a written argument for why it is safe.
//!
//! Attachment rules:
//!
//! * A **trailing** comment (code earlier on the same line) suppresses
//!   findings of that rule on its own line.
//! * A **standalone** comment line suppresses the next line that holds
//!   code.
//! * When the suppressed line is a function signature (`fn` keyword
//!   line), the suppression covers the **whole function body** — this
//!   is the form used for invariant-dense code (ECC math, the recovery
//!   scan) where per-line annotations would drown the code.

use crate::parse::lexer::TokenKind;
use crate::parse::SourceFile;

/// One parsed suppression and the line range it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule being allowed (e.g. `panic-path`, `no-unwrap`).
    pub rule: String,
    /// The mandatory human-written justification.
    pub justification: String,
    /// Line the comment itself is on.
    pub comment_line: usize,
    /// Inclusive line range the suppression covers.
    pub lines: (usize, usize),
}

/// Every suppression in one file, plus the malformed ones.
#[derive(Debug, Clone, Default)]
pub struct SuppressionSet {
    /// Well-formed suppressions.
    pub entries: Vec<Suppression>,
    /// `(line, problem)` for comments that look like suppressions but
    /// do not parse — each becomes a `bad-suppression` finding.
    pub malformed: Vec<(usize, String)>,
}

impl SuppressionSet {
    /// Does this set allow `rule` findings on `line`?
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.entries
            .iter()
            .any(|s| s.rule == rule && line >= s.lines.0 && line <= s.lines.1)
    }

    /// Collects suppressions from a parsed file's comment tokens.
    pub fn collect(file: &SourceFile) -> SuppressionSet {
        let mut set = SuppressionSet::default();
        for (index, token) in file.tokens.iter().enumerate() {
            if token.kind != TokenKind::LineComment {
                continue;
            }
            let text = token.text(&file.source);
            let Some(at) = text.find("sos-lint:") else {
                continue;
            };
            let directive = text[at + "sos-lint:".len()..].trim();
            match parse_allow(directive) {
                Ok((rule, justification)) => {
                    let target = target_line(file, index, token.line);
                    let lines = expand_fn_scope(file, target);
                    set.entries.push(Suppression {
                        rule,
                        justification,
                        comment_line: token.line,
                        lines,
                    });
                }
                Err(problem) => set.malformed.push((token.line, problem)),
            }
        }
        set
    }
}

/// Parses `allow(<rule>, "<justification>")`.
fn parse_allow(directive: &str) -> Result<(String, String), String> {
    let Some(rest) = directive.strip_prefix("allow") else {
        return Err(format!("expected `allow(...)`, found `{directive}`"));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("expected `(` after `allow`".to_string());
    };
    let Some(comma) = rest.find(',') else {
        return Err("missing justification: use allow(<rule>, \"<why>\")".to_string());
    };
    let rule = rest[..comma].trim().to_string();
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
    {
        return Err(format!("bad rule name `{rule}`"));
    }
    let tail = rest[comma + 1..].trim();
    let Some(tail) = tail.strip_prefix('"') else {
        return Err("justification must be a quoted string".to_string());
    };
    let Some(close) = tail.find('"') else {
        return Err("unterminated justification string".to_string());
    };
    let justification = tail[..close].trim().to_string();
    if justification.is_empty() {
        return Err("justification must not be empty".to_string());
    }
    let after = tail[close + 1..].trim_start();
    if !after.starts_with(')') {
        return Err("expected `)` after justification".to_string());
    }
    Ok((rule, justification))
}

/// The code line a suppression comment attaches to: its own line when
/// code precedes the comment on it, otherwise the next line with a
/// non-comment token.
fn target_line(file: &SourceFile, comment_index: usize, comment_line: usize) -> usize {
    let trailing = file.tokens[..comment_index]
        .iter()
        .rev()
        .take_while(|t| t.line == comment_line)
        .any(|t| !t.is_comment());
    if trailing {
        return comment_line;
    }
    file.tokens[comment_index + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        .unwrap_or(comment_line)
}

/// Expands a target line to the whole function when it is a signature
/// line; otherwise covers just that line.
fn expand_fn_scope(file: &SourceFile, target: usize) -> (usize, usize) {
    for item in &file.items.fns {
        if item.line == target {
            return (item.line, item.end_line);
        }
    }
    (target, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::SourceFile;
    use std::path::PathBuf;

    fn parse(source: &str) -> SourceFile {
        SourceFile::parse(
            PathBuf::from("crates/x/src/lib.rs"),
            "x".into(),
            source.into(),
        )
    }

    #[test]
    fn trailing_suppression_covers_its_line() {
        let file = parse(
            "fn f(x: &[u8]) -> u8 {\n    x[0] // sos-lint: allow(panic-path, \"caller checks len\")\n}\n",
        );
        let set = SuppressionSet::collect(&file);
        assert_eq!(set.entries.len(), 1);
        assert!(set.allows("panic-path", 2));
        assert!(!set.allows("panic-path", 1));
        assert!(!set.allows("no-unwrap", 2));
        assert_eq!(set.entries[0].justification, "caller checks len");
    }

    #[test]
    fn standalone_suppression_covers_next_code_line() {
        let file = parse(
            "fn f(x: &[u8]) -> u8 {\n    // sos-lint: allow(panic-path, \"bounds checked above\")\n    x[0]\n}\n",
        );
        let set = SuppressionSet::collect(&file);
        assert!(set.allows("panic-path", 3));
        assert!(!set.allows("panic-path", 2));
    }

    #[test]
    fn fn_signature_suppression_covers_the_body() {
        let file = parse(
            "// sos-lint: allow(panic-path, \"GF tables cover the full index domain\")\nfn gf_mul(a: u32, b: u32) -> u32 {\n    let x = TABLE[a as usize];\n    TABLE[(x + b) as usize]\n}\nfn after() {}\n",
        );
        let set = SuppressionSet::collect(&file);
        assert!(set.allows("panic-path", 2));
        assert!(set.allows("panic-path", 3));
        assert!(set.allows("panic-path", 4));
        assert!(set.allows("panic-path", 5));
        assert!(!set.allows("panic-path", 6));
    }

    #[test]
    fn missing_justification_is_malformed() {
        for bad in [
            "// sos-lint: allow(panic-path)",
            "// sos-lint: allow(panic-path, )",
            "// sos-lint: allow(panic-path, \"\")",
            "// sos-lint: allow(panic-path, \"unterminated)",
            "// sos-lint: deny(panic-path, \"x\")",
            "// sos-lint: allow(Panic Path, \"x\")",
        ] {
            let file = parse(&format!("{bad}\nfn f() {{}}\n"));
            let set = SuppressionSet::collect(&file);
            assert!(set.entries.is_empty(), "{bad} parsed");
            assert_eq!(set.malformed.len(), 1, "{bad} not reported");
        }
    }

    #[test]
    fn suppression_inside_string_literal_is_ignored() {
        let file = parse(
            "fn f() {\n    let s = \"// sos-lint: allow(no-unwrap, \\\"fake\\\")\";\n    let _ = s;\n}\n",
        );
        let set = SuppressionSet::collect(&file);
        assert!(set.entries.is_empty());
        assert!(set.malformed.is_empty());
    }
}
