//! Golden test for the determinism pass: a vendored fixture crate
//! (`tests/fixtures/nondet`) seeds one known-bad example per
//! nondeterminism source kind, and this test pins the exact findings —
//! kind, line ownership, and full call chain — plus the suppression
//! accounting. If a detector regresses (a kind stops firing, a chain
//! goes missing, a suppression stops counting) this fails loudly with
//! the diff.

use sos_analyze::determinism::{run_determinism, NondetSource};
use sos_analyze::panicpath::EntryPoint;
use sos_analyze::Workspace;
use std::path::PathBuf;

fn fixture_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("nondet")
}

#[test]
fn fixture_detects_every_seeded_source_kind_with_chains() {
    let workspace = Workspace::load(&fixture_root());
    assert_eq!(
        workspace.files.len(),
        1,
        "fixture layout changed — expected exactly crates/badcrate/src/lib.rs"
    );
    let entries = vec![
        EntryPoint::function("cache_report"),
        EntryPoint::function("diagnostics"),
    ];
    let report = run_determinism(&workspace, &entries);

    assert!(
        report.missing_entry_points.is_empty(),
        "fixture entry points no longer resolve: {:?}",
        report.missing_entry_points
    );

    // (kind, containing fn at the end of the chain) for every finding,
    // in the pass's deterministic file/line order.
    let got: Vec<(NondetSource, Vec<String>)> = report
        .findings
        .iter()
        .map(|f| (f.source, f.chain.clone()))
        .collect();
    let chain = |tail: &str| -> Vec<String> {
        vec![
            "cache_report".to_string(),
            "summarize".to_string(),
            tail.to_string(),
        ]
    };
    let expected = vec![
        (NondetSource::MapIteration, chain("Registry::tally")),
        (NondetSource::WallClock, chain("stamp")),
        (NondetSource::UnseededRng, chain("pick_seed")),
        (NondetSource::EnvRead, chain("ambient_noise")),
        (NondetSource::ThreadIdentity, chain("worker_tag")),
        (NondetSource::FloatReduction, chain("shared_total")),
    ];
    assert_eq!(
        got,
        expected,
        "fixture findings drifted:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The justified clock read behind `diagnostics` is suppressed, and
    // nothing in the fixture hits the stderr-timing allowlist.
    assert_eq!(report.suppressed, 1);
    assert_eq!(report.allowlisted, 0);
}

#[test]
fn fixture_findings_carry_real_lines_and_messages() {
    let workspace = Workspace::load(&fixture_root());
    let report = run_determinism(&workspace, &[EntryPoint::function("cache_report")]);
    let source = &workspace.files[0].source;
    for finding in &report.findings {
        let line_text = source
            .lines()
            .nth(finding.line - 1)
            .unwrap_or_else(|| panic!("finding line {} out of range", finding.line));
        assert!(
            !line_text.trim().is_empty(),
            "finding points at a blank line: {finding}"
        );
        assert!(
            !finding.message.is_empty() && !finding.chain.is_empty(),
            "finding missing message or chain: {finding}"
        );
    }
    let env_finding = report
        .findings
        .iter()
        .find(|f| f.source == NondetSource::EnvRead)
        .expect("env-read finding present");
    assert!(
        env_finding.message.contains("NODE_NAME"),
        "env-read message should name the variable: {}",
        env_finding.message
    );
}
