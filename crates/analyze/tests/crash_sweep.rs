//! Crash-sweep acceptance: power cuts at scheduled operations across a
//! simulated device life, each followed by a full remount, with every
//! auditor re-run after every crash.
//!
//! The long sweep covers 500+ crash points with seed-swept op offsets
//! (1..=101 operations into the day, alternating partitions), which
//! lands cuts on essentially every position of the daily op stream:
//! mid-write, mid-GC, mid-scrub, mid-checkpoint.

use sos_analyze::harness::{run_crashy_days, seed_from_env};
use sos_classify::{multi_user_corpus, Classifier, FeatureExtractor, LogisticRegression};
use sos_core::{CloudConfig, ControllerConfig, ObjectStore, SosConfig, SosController, SosDevice};
use sos_workload::{DeviceLife, UsageProfile, WorkloadConfig};

fn controller(seed: u64) -> SosController<SosDevice, LogisticRegression> {
    let extractor = FeatureExtractor::default();
    let corpus = multi_user_corpus(&extractor, 1, 3);
    let mut model = LogisticRegression::default();
    model.train(&corpus.features, &corpus.labels);
    let device = SosDevice::new(&SosConfig::tiny(seed));
    let capacity = device.capacity_bytes();
    let life = DeviceLife::new(WorkloadConfig::phone(capacity, UsageProfile::Typical, seed));
    SosController::new(
        device,
        model,
        extractor,
        life,
        CloudConfig::none(),
        ControllerConfig::default(),
    )
}

#[test]
fn crash_sweep_remounts_cleanly() {
    let seed = seed_from_env(11);
    let mut c = controller(seed);
    let report = run_crashy_days(&mut c, 60, 5, seed).expect("recovery must not error");
    assert!(report.crashes >= 40, "too few crashes: {}", report.crashes);
    assert_eq!(
        report.findings,
        vec![],
        "auditor violations after remount (seed {seed})"
    );
    assert!(report.checkpoints > 0, "no checkpoints taken");
    // The device keeps working after the sweep.
    c.run_day();
    assert!(!c.crashed(), "device crashed with no fault armed");
}

/// The full acceptance sweep: >= 500 crash points, zero violations,
/// zero unreported SYS loss, torn pages never resurfacing. Run by the
/// CI crash-sweep job (`cargo test --release -- --ignored`).
#[test]
#[ignore = "long sweep; run explicitly or via the CI crash-sweep job"]
fn crash_sweep_500_points() {
    let seed = seed_from_env(11);
    let mut c = controller(seed);
    let mut total = sos_analyze::CrashSweepReport::default();
    let mut day_chunks = 0u64;
    while total.crashes < 500 {
        day_chunks += 1;
        assert!(
            day_chunks <= 40,
            "sweep not reaching 500 crashes: {} after {} chunks",
            total.crashes,
            day_chunks
        );
        let report =
            run_crashy_days(&mut c, 20, 5, seed.wrapping_add(day_chunks)).expect("recovery");
        total.days += report.days;
        total.crashes += report.crashes;
        total.checkpoints += report.checkpoints;
        total.findings.extend(report.findings);
        total.sys_repaired += report.sys_repaired;
        total.sys_lost += report.sys_lost;
        total.spare_lost += report.spare_lost;
        total.torn_pages += report.torn_pages;
        total.resurrected_trimmed += report.resurrected_trimmed;
    }
    assert!(total.crashes >= 500, "crashes: {}", total.crashes);
    assert_eq!(
        total.findings,
        vec![],
        "auditor violations across {} crashes (seed {seed})",
        total.crashes
    );
    println!(
        "crash sweep: {} days, {} crashes, {} checkpoints, {} torn, {} repaired, {} sys lost (declared), {} spare lost (declared), {} resurrected trims",
        total.days,
        total.crashes,
        total.checkpoints,
        total.torn_pages,
        total.sys_repaired,
        total.sys_lost,
        total.spare_lost,
        total.resurrected_trimmed
    );
}
