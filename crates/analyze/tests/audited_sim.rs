//! End-to-end: a real controller-driven simulation runs under interval
//! auditing without tripping any invariant.

use sos_analyze::harness::run_audited_days;
use sos_classify::{multi_user_corpus, Classifier, FeatureExtractor, LogisticRegression};
use sos_core::{CloudConfig, ControllerConfig, ObjectStore, SosConfig, SosController, SosDevice};
use sos_workload::{DeviceLife, UsageProfile, WorkloadConfig};

#[test]
fn audited_simulation_run_is_clean() {
    let extractor = FeatureExtractor::default();
    let corpus = multi_user_corpus(&extractor, 1, 3);
    let mut model = LogisticRegression::default();
    model.train(&corpus.features, &corpus.labels);
    let device = SosDevice::new(&SosConfig::tiny(11));
    let capacity = device.capacity_bytes();
    let life = DeviceLife::new(WorkloadConfig::phone(capacity, UsageProfile::Typical, 11));
    let mut controller = SosController::new(
        device,
        model,
        extractor,
        life,
        CloudConfig::none(),
        ControllerConfig::default(),
    );
    let findings = run_audited_days(&mut controller, 6, 2);
    assert_eq!(findings, vec![], "invariant violations in a benign run");
    assert!(controller.stats.creates > 0, "workload generated nothing");
}
