//! Golden test for the token-stream lint port (PR 3).
//!
//! The five original rules (no-unwrap, no-f32, pub-docs, no-sleep,
//! no-debug-macros) were rewritten from a line-blanking scanner onto
//! the spanned token stream. This test vendors the *legacy* scanner
//! verbatim as an oracle and asserts both implementations produce
//! identical `(file, line, rule, message)` findings over a fixture set
//! that exercises every rule, comment/string shadowing, and
//! `#[cfg(test)]` regions.
//!
//! The fixtures deliberately avoid the three intentional behaviour
//! changes of the port, which are covered by their own unit tests:
//!
//! * `#[cfg(any(test, …))]` regions (legacy missed them),
//! * `.unwrap()` split across lines by rustfmt (legacy missed it),
//! * `my_thread::sleep` (legacy substring match fired on it).

use sos_analyze::{run_lints_on, Workspace};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Vendored legacy implementation (pre-PR-3 `lint.rs`), trimmed to what
// the five ported rules need. Do not "improve" this code: it is the
// oracle.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
struct LegacyFinding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

struct PreparedFile {
    raw: Vec<String>,
    cleaned: Vec<String>,
    in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum ScanState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

fn clean_source(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut state = ScanState::Normal;
    for line in source.lines() {
        let chars: Vec<char> = line.chars().collect();
        let mut cleaned = String::with_capacity(chars.len());
        let mut i = 0usize;
        if state == ScanState::LineComment {
            state = ScanState::Normal;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                ScanState::Normal => match c {
                    '/' if next == Some('/') => {
                        let third = chars.get(i + 2).copied();
                        if third == Some('/') || third == Some('!') {
                            cleaned.push_str("//");
                            cleaned.push(third.unwrap_or('/'));
                        }
                        state = ScanState::LineComment;
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = ScanState::BlockComment(1);
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = ScanState::Str;
                        cleaned.push(' ');
                    }
                    'r' | 'b' if is_raw_string_start(&chars, i) => {
                        let (hashes, consumed) = raw_string_open(&chars, i);
                        state = ScanState::RawStr(hashes);
                        for _ in 0..consumed {
                            cleaned.push(' ');
                        }
                        i += consumed;
                        continue;
                    }
                    '\'' => {
                        if is_char_literal(&chars, i) {
                            state = ScanState::Char;
                        }
                        cleaned.push(if is_char_literal(&chars, i) {
                            ' '
                        } else {
                            '\''
                        });
                    }
                    _ => cleaned.push(c),
                },
                ScanState::LineComment => {
                    i = chars.len();
                    continue;
                }
                ScanState::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            ScanState::Normal
                        } else {
                            ScanState::BlockComment(depth - 1)
                        };
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = ScanState::BlockComment(depth + 1);
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    cleaned.push(' ');
                }
                ScanState::Str => {
                    if c == '\\' {
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = ScanState::Normal;
                    }
                    cleaned.push(' ');
                }
                ScanState::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        state = ScanState::Normal;
                        for _ in 0..=hashes as usize {
                            cleaned.push(' ');
                        }
                        i += 1 + hashes as usize;
                        continue;
                    }
                    cleaned.push(' ');
                }
                ScanState::Char => {
                    if c == '\\' {
                        cleaned.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        state = ScanState::Normal;
                    }
                    cleaned.push(' ');
                }
            }
            i += 1;
        }
        out.push(cleaned);
    }
    out
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"') && (i == 0 || !is_ident_char(chars[i - 1]))
}

fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1;
    (hashes, j - i)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn mark_test_regions(cleaned: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; cleaned.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region: Option<(i64, bool)> = None;
    for (idx, line) in cleaned.iter().enumerate() {
        let trimmed = line.trim();
        if region.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending = true;
                in_test[idx] = true;
            } else if pending {
                in_test[idx] = true;
                if trimmed.starts_with("#[") {
                    // Further attributes between cfg(test) and the item.
                } else if !trimmed.is_empty() {
                    if line.contains('{') {
                        region = Some((depth, false));
                        pending = false;
                    } else if trimmed.ends_with(';') {
                        pending = false;
                    }
                }
            }
        } else {
            in_test[idx] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((_, opened)) = region.as_mut() {
                        *opened = true;
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some((return_depth, opened)) = region {
            in_test[idx] = true;
            if opened && depth <= return_depth {
                region = None;
            }
        }
    }
    in_test
}

fn prepare(source: &str) -> PreparedFile {
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let cleaned = clean_source(source);
    let in_test = mark_test_regions(&cleaned);
    PreparedFile {
        raw,
        cleaned,
        in_test,
    }
}

fn has_token(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = haystack[start..].find(needle) {
        let begin = start + pos;
        let end = begin + needle.len();
        let before_ok = begin == 0 || !is_ident_char(bytes[begin - 1] as char);
        let after_ok = end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

fn has_macro(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(name) {
        let begin = start + pos;
        let end = begin + name.len();
        let before_ok = begin == 0 || !is_ident_char(bytes[begin - 1] as char);
        let bang = bytes.get(end) == Some(&b'!');
        let opener = matches!(bytes.get(end + 1), Some(b'(' | b'[' | b'{'));
        if before_ok && bang && opener {
            return true;
        }
        start = end;
    }
    false
}

const NO_UNWRAP_CRATES: &[&str] = &["flash", "ftl", "core", "hostfs"];
const NO_F32_CRATES: &[&str] = &["carbon"];
const DOC_CRATES: &[&str] = &["core", "ftl"];
const BANNED_MACROS: &[&str] = &["todo", "unimplemented", "dbg"];
const PUB_ITEM_STARTS: &[&str] = &[
    "pub fn ",
    "pub async fn ",
    "pub unsafe fn ",
    "pub const fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub mod ",
    "pub const ",
    "pub static ",
    "pub type ",
    "pub union ",
];

fn has_doc_comment(raw: &[String], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = raw[i].trim();
        if trimmed.starts_with("#[") || trimmed.starts_with(')') || trimmed.starts_with(']') {
            continue;
        }
        return trimmed.starts_with("///") || trimmed.starts_with("//!");
    }
    false
}

fn legacy_lint_file(relative: &Path, prepared: &PreparedFile, findings: &mut Vec<LegacyFinding>) {
    let crate_name = relative
        .components()
        .nth(1)
        .map(|c| c.as_os_str().to_string_lossy().to_string())
        .unwrap_or_default();
    let check_unwrap = NO_UNWRAP_CRATES.contains(&crate_name.as_str());
    let check_f32 = NO_F32_CRATES.contains(&crate_name.as_str());
    let check_docs = DOC_CRATES.contains(&crate_name.as_str());
    for (idx, line) in prepared.cleaned.iter().enumerate() {
        if prepared.in_test[idx] {
            continue;
        }
        let number = idx + 1;
        if check_unwrap {
            if line.contains(".unwrap()") {
                findings.push(LegacyFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "no-unwrap",
                    message: ".unwrap() in non-test storage-stack code".to_string(),
                });
            }
            if line.contains(".expect(") {
                findings.push(LegacyFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "no-unwrap",
                    message: ".expect() in non-test storage-stack code".to_string(),
                });
            }
        }
        if check_f32 && has_token(line, "f32") {
            findings.push(LegacyFinding {
                file: relative.to_path_buf(),
                line: number,
                rule: "no-f32",
                message: "f32 in carbon accounting (use f64)".to_string(),
            });
        }
        if line.contains("thread::sleep") {
            findings.push(LegacyFinding {
                file: relative.to_path_buf(),
                line: number,
                rule: "no-sleep",
                message: "std::thread::sleep in simulation code".to_string(),
            });
        }
        for name in BANNED_MACROS {
            if has_macro(line, name) {
                findings.push(LegacyFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "no-debug-macros",
                    message: format!("{name}!() in non-test code"),
                });
            }
        }
        if check_docs {
            let trimmed = line.trim_start();
            let is_pub_item = PUB_ITEM_STARTS
                .iter()
                .any(|start| trimmed.starts_with(start));
            let external_mod = trimmed.starts_with("pub mod ") && trimmed.trim_end().ends_with(';');
            if is_pub_item && !external_mod && !has_doc_comment(&prepared.raw, idx) {
                findings.push(LegacyFinding {
                    file: relative.to_path_buf(),
                    line: number,
                    rule: "pub-docs",
                    message: format!(
                        "undocumented public item: {}",
                        trimmed.split('{').next().unwrap_or(trimmed).trim()
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// The comparison itself.
// ---------------------------------------------------------------------

/// The five rules the port must reproduce exactly.
const GOLDEN_RULES: &[&str] = &[
    "no-unwrap",
    "no-f32",
    "pub-docs",
    "no-sleep",
    "no-debug-macros",
];

/// Fixture sources: `(crate, path, source)` triples covering every
/// golden rule plus the shadowing cases (strings, comments, raw
/// strings, char literals, `#[cfg(test)]` regions).
fn fixtures() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "ftl",
            "crates/ftl/src/fixture.rs",
            r##"fn live(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn message(y: Result<u8, ()>) -> u8 {
    y.expect("boom")
}

fn shadowed() -> &'static str {
    // a comment saying .unwrap() does not count
    /* nor does .expect( in a block comment */
    let s = "string .unwrap() text";
    let r = r#"raw .expect( text"#;
    let _c = '"';
    let _after = s.len() + r.len(); // '"' above must not open a string
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn inside() {
        Some(1).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
"##,
        ),
        (
            "carbon",
            "crates/carbon/src/fixture.rs",
            r##"pub fn footprint(grams: f32) -> f64 {
    let not_f32_ident = grams as f64;
    not_f32_ident
}

fn fine(x: f64) -> f64 {
    x
}
"##,
        ),
        (
            "core",
            "crates/core/src/fixture.rs",
            r##"/// Documented: no finding.
pub fn documented() {}

pub fn undocumented() {}

/// Documented struct with a derive between doc and item.
#[derive(Debug)]
pub struct WithAttr;

pub struct Bare {
    field: u32,
}

pub mod external;

pub mod inline {
    fn helper() {}
}

/// Constants too.
pub const DOCUMENTED: u32 = 1;

pub static UNDOCUMENTED_STATIC: u32 = 2;

pub(crate) fn crate_visible_is_exempt() {}

impl Bare {
    /// Uses the field.
    pub fn field(&self) -> u32 {
        self.field
    }
}
"##,
        ),
        (
            "sim",
            "crates/sim/src/fixture.rs",
            r##"fn waits() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}

fn stubbed() {
    todo!("later")
}

fn probed(x: u32) -> u32 {
    dbg!(x)
}

fn unfinished() {
    unimplemented!()
}

fn todo_mentions_are_fine() {
    // todo!() in a comment
    let _s = "unimplemented!()";
    let todo_count = 3; // ident containing the word
    let _ = todo_count;
}

#[cfg(test)]
mod tests {
    fn gated() {
        todo!()
    }
}
"##,
        ),
    ]
}

fn legacy_findings(sources: &[(&str, &str, &str)]) -> Vec<(String, usize, String, String)> {
    let mut findings = Vec::new();
    for (_, path, source) in sources {
        let prepared = prepare(source);
        legacy_lint_file(Path::new(path), &prepared, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
        .into_iter()
        .map(|f| {
            (
                f.file.display().to_string(),
                f.line,
                f.rule.to_string(),
                f.message,
            )
        })
        .collect()
}

fn ported_findings(sources: &[(&str, &str, &str)]) -> Vec<(String, usize, String, String)> {
    let workspace = Workspace::from_sources(sources);
    run_lints_on(&workspace)
        .findings
        .into_iter()
        .filter(|f| GOLDEN_RULES.contains(&f.rule))
        .map(|f| {
            (
                f.file.display().to_string(),
                f.line,
                f.rule.to_string(),
                f.message,
            )
        })
        .collect()
}

#[test]
fn token_stream_port_matches_legacy_scanner() {
    let sources = fixtures();
    let legacy = legacy_findings(&sources);
    let ported = ported_findings(&sources);
    assert_eq!(
        legacy, ported,
        "token-stream port diverged from the legacy line scanner"
    );
}

#[test]
fn golden_fixtures_exercise_every_rule() {
    let sources = fixtures();
    let legacy = legacy_findings(&sources);
    for rule in GOLDEN_RULES {
        assert!(
            legacy.iter().any(|(_, _, r, _)| r == rule),
            "fixture set never fires `{rule}` — the golden comparison would be vacuous for it"
        );
    }
    // And the shadowing fixtures must not fire: a finding inside a
    // string/comment region would show both implementations share a
    // blind spot rather than proving equivalence.
    assert!(
        !legacy
            .iter()
            .any(|(file, line, _, _)| file.ends_with("ftl/src/fixture.rs")
                && *line >= 9
                && *line <= 17),
        "shadowed region fired a finding"
    );
}
