//! Corruption-injection tests: each FTL/partition invariant is broken
//! in a snapshot copy and must produce *exactly* the expected
//! [`Violation`] — no more, no less. Clean snapshots must audit clean.
//!
//! Snapshots are plain data, so corrupting one never touches a live
//! FTL; the auditors cannot tell the difference, which is the point.

use proptest::prelude::*;
use sos_analyze::{
    AuditedFtl, CoreAuditorSet, EraseDisciplineAuditor, FtlAuditorSet, PlacementAuditor,
    StateAuditor, Violation,
};
use sos_core::{ObjectStore, Partition, SosConfig, SosDevice};
use sos_flash::{CellDensity, DeviceConfig, ProgramMode};
use sos_ftl::{Ftl, FtlConfig, FtlState, SlotSnapshot};

fn populated_ftl() -> Ftl {
    let mut ftl = Ftl::new(
        &DeviceConfig::tiny(CellDensity::Tlc),
        FtlConfig::conventional(ProgramMode::native(CellDensity::Tlc)),
    );
    let page = vec![0xA5; ftl.page_bytes()];
    for lpn in 0..16 {
        ftl.write(lpn, &page).expect("write");
    }
    // Overwrites create invalidated-but-programmed pages; a trim leaves
    // an unmapped LPN behind.
    for lpn in 0..4 {
        ftl.write(lpn, &page).expect("overwrite");
    }
    ftl.trim(5).expect("trim");
    ftl
}

fn populated_device() -> SosDevice {
    let mut device = SosDevice::new(&SosConfig::tiny(9));
    for id in 0..5u64 {
        device
            .put(id, &vec![id as u8 + 1; 4096], Partition::Sys)
            .expect("sys put");
    }
    for id in 10..13u64 {
        device
            .put(id, &vec![id as u8; 2048], Partition::Spare)
            .expect("spare put");
    }
    device
}

/// A flat physical page index that is certainly unprogrammed: page 0 of
/// an erased block from the free pool.
fn unprogrammed_location(state: &FtlState) -> u64 {
    let block = state
        .free
        .iter()
        .copied()
        .find(|&b| state.device[b as usize].next_page == 0)
        .expect("an erased free block exists");
    state.flat_page(block, 0)
}

#[test]
fn clean_ftl_snapshot_audits_clean() {
    let ftl = populated_ftl();
    let mut auditors = FtlAuditorSet::new();
    // Twice, so the stateful auditors (wear, conservation) also see a
    // clean history step.
    assert_eq!(auditors.audit(&ftl.audit_snapshot()), vec![]);
    assert_eq!(auditors.audit(&ftl.audit_snapshot()), vec![]);
}

#[test]
fn stale_l2p_entry_is_detected() {
    let ftl = populated_ftl();
    let mut state = ftl.audit_snapshot();
    let location = unprogrammed_location(&state);
    // LPN 5 was trimmed; resurrect it pointing at an erased page.
    state.l2p[5] = SlotSnapshot::Mapped(location);
    let violations = FtlAuditorSet::new().audit(&state);
    assert_eq!(
        violations,
        vec![Violation::MappedPageNotProgrammed { lpn: 5, location }]
    );
}

#[test]
fn duplicate_mapping_is_detected() {
    let ftl = populated_ftl();
    let mut state = ftl.audit_snapshot();
    let SlotSnapshot::Mapped(location) = state.l2p[6] else {
        panic!("LPN 6 is mapped");
    };
    state.l2p[7] = SlotSnapshot::Mapped(location);
    let violations = FtlAuditorSet::new().audit(&state);
    assert_eq!(
        violations,
        vec![Violation::DuplicateMapping {
            lpn_a: 6,
            lpn_b: 7,
            location
        }]
    );
}

#[test]
fn reverse_map_mismatch_is_detected() {
    let ftl = populated_ftl();
    let mut state = ftl.audit_snapshot();
    let SlotSnapshot::Mapped(location) = state.l2p[8] else {
        panic!("LPN 8 is mapped");
    };
    let (block, offset) = state.split_page(location);
    // The reverse map claims a different owner.
    state.blocks[block as usize].lpns[offset as usize] = Some(9999);
    let violations = FtlAuditorSet::new().audit(&state);
    assert_eq!(
        violations,
        vec![Violation::ReverseMapMismatch {
            block,
            offset,
            forward: Some(8),
            reverse: Some(9999),
        }]
    );
}

#[test]
fn valid_count_skew_is_detected() {
    let ftl = populated_ftl();
    let mut state = ftl.audit_snapshot();
    let SlotSnapshot::Mapped(location) = state.l2p[0] else {
        panic!("LPN 0 is mapped");
    };
    let (block, _) = state.split_page(location);
    let recorded = state.blocks[block as usize].valid + 1;
    state.blocks[block as usize].valid = recorded;
    let violations = FtlAuditorSet::new().audit(&state);
    assert_eq!(
        violations,
        vec![Violation::ValidCountMismatch {
            block,
            recorded,
            actual: recorded - 1,
        }]
    );
}

#[test]
fn double_program_is_detected() {
    let ftl = populated_ftl();
    let mut state = ftl.audit_snapshot();
    // An erased free block suddenly holds a programmed page at (and so
    // beyond) its write pointer: a program without an erase.
    let (block, _) = state.split_page(unprogrammed_location(&state));
    state.device[block as usize].programmed.push(0);
    let violations = FtlAuditorSet::new().audit(&state);
    assert_eq!(
        violations,
        vec![Violation::ProgramBeyondWritePointer {
            block,
            page: 0,
            next_page: 0,
        }]
    );
}

#[test]
fn programmed_prefix_hole_is_detected() {
    let ftl = populated_ftl();
    let mut state = ftl.audit_snapshot();
    // Find a programmed page that no LPN owns (an invalidated old
    // version), so removing it trips only the discipline auditor.
    let (block, page) = state
        .device
        .iter()
        .find_map(|snapshot| {
            let map = &state.blocks[snapshot.block as usize];
            snapshot
                .programmed
                .iter()
                .copied()
                .find(|&p| map.lpns.get(p as usize).is_some_and(|slot| slot.is_none()))
                .map(|p| (snapshot.block, p))
        })
        .expect("an invalidated programmed page exists");
    state.device[block as usize]
        .programmed
        .retain(|&p| p != page);
    let violations = EraseDisciplineAuditor.audit(&state);
    assert_eq!(
        violations,
        vec![Violation::ProgrammedPrefixHole { block, page }]
    );
}

#[test]
fn wear_rollback_is_detected() {
    let ftl = populated_ftl();
    let mut auditors = FtlAuditorSet::new();
    // A lightly-worn baseline (a fresh device has all-zero PEC, which
    // cannot roll back further).
    let mut worn = ftl.audit_snapshot();
    worn.device[2].pec = 5;
    assert_eq!(auditors.audit(&worn), vec![]);
    // Between snapshots, the block's PEC travels backwards.
    let mut corrupted = worn.clone();
    corrupted.device[2].pec = 4;
    let violations = auditors.audit(&corrupted);
    assert_eq!(
        violations,
        vec![Violation::WearRollback {
            block: 2,
            previous: 5,
            current: 4,
        }]
    );
}

#[test]
fn retired_block_revival_is_detected() {
    let ftl = populated_ftl();
    let mut auditors = FtlAuditorSet::new();
    let mut retired = ftl.audit_snapshot();
    retired.device[0].bad = true;
    assert_eq!(auditors.audit(&retired), vec![]);
    let mut revived = retired.clone();
    revived.device[0].bad = false;
    assert_eq!(
        auditors.audit(&revived),
        vec![Violation::RetiredBlockRevived { block: 0 }]
    );
}

#[test]
fn gc_conservation_breach_is_detected() {
    let ftl = populated_ftl();
    let mut auditors = FtlAuditorSet::new();
    let clean = ftl.audit_snapshot();
    assert_eq!(auditors.audit(&clean), vec![]);
    let before = clean.mapped_pages() + clean.lost_pages();
    // A mapped page vanishes without a trim being recorded — the
    // signature of a GC bug that drops live data.
    let mut corrupted = clean.clone();
    corrupted.l2p[3] = SlotSnapshot::Unmapped;
    let violations = auditors.audit(&corrupted);
    assert_eq!(
        violations,
        vec![Violation::LiveDataShrank {
            before,
            after: before - 1,
            trims: 0,
        }]
    );
}

#[test]
fn clean_device_snapshot_audits_clean() {
    let device = populated_device();
    let mut auditors = CoreAuditorSet::new();
    assert_eq!(auditors.audit(&device.audit_snapshot()), vec![]);
    assert_eq!(auditors.audit(&device.audit_snapshot()), vec![]);
}

#[test]
fn sys_on_native_plc_is_detected() {
    let device = populated_device();
    let mut state = device.audit_snapshot();
    // The SYS partition silently runs native PLC instead of pseudo-QLC:
    // durable data on the least durable cells.
    state.sys.mode = ProgramMode::native(CellDensity::Plc);
    let violations = PlacementAuditor.audit(&state);
    assert_eq!(violations.len(), 1);
    assert!(matches!(
        &violations[0],
        Violation::PartitionModeMismatch {
            partition: "sys",
            ..
        }
    ));
}

#[test]
fn sys_object_in_parity_range_is_detected() {
    let device = populated_device();
    let mut state = device.audit_snapshot();
    let parity_base = state.parity_base;
    state.objects[0].lpns[0] = parity_base;
    let violations = PlacementAuditor.audit(&state);
    assert_eq!(
        violations,
        vec![Violation::SysObjectInParityRange {
            id: state.objects[0].id,
            lpn: parity_base,
            parity_base,
        }]
    );
}

#[test]
fn missing_stripe_parity_is_detected() {
    let device = populated_device();
    let mut state = device.audit_snapshot();
    // Pick a live SYS data page and erase its stripe's parity mapping.
    let lpn = state
        .objects
        .iter()
        .filter(|object| object.partition == Partition::Sys)
        .flat_map(|object| object.lpns.iter().copied())
        .find(|&lpn| matches!(state.sys.l2p[lpn as usize], SlotSnapshot::Mapped(_)))
        .expect("a live SYS page exists");
    let stripe = lpn / state.stripe_width;
    let parity_lpn = state.parity_base + stripe;
    state.sys.l2p[parity_lpn as usize] = SlotSnapshot::Unmapped;
    let violations = PlacementAuditor.audit(&state);
    assert_eq!(
        violations,
        vec![Violation::SysParityMissing { stripe, parity_lpn }]
    );
}

#[test]
fn audited_ftl_wrapper_stays_clean_through_scrub() {
    let ftl = Ftl::new(
        &DeviceConfig::tiny(CellDensity::Tlc),
        FtlConfig::conventional(ProgramMode::native(CellDensity::Tlc)),
    );
    let mut audited = AuditedFtl::new(ftl);
    let page = vec![0x5A; audited.inner().page_bytes()];
    for lpn in 0..24 {
        audited.write(lpn, &page).expect("write");
    }
    for lpn in 0..24 {
        audited.read(lpn).expect("read");
    }
    for lpn in (0..24).step_by(3) {
        audited.trim(lpn).expect("trim");
    }
    audited.advance_days(30.0);
    audited.scrub().expect("scrub");
    assert_eq!(audited.take_violations(), vec![]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary write/overwrite/trim interleavings never trip an
    /// auditor on a healthy FTL — the per-operation audit hook holds.
    #[test]
    fn audited_ftl_clean_under_arbitrary_ops(
        ops in proptest::collection::vec((0u8..3, 0u64..32), 1..80),
    ) {
        let ftl = Ftl::new(
            &DeviceConfig::tiny(CellDensity::Tlc),
            FtlConfig::conventional(ProgramMode::native(CellDensity::Tlc)),
        );
        let mut audited = AuditedFtl::new(ftl);
        let page = vec![0xC3; audited.inner().page_bytes()];
        for (op, lpn) in ops {
            match op {
                0 | 1 => {
                    let _ = audited.write(lpn, &page);
                }
                _ => {
                    let _ = audited.trim(lpn);
                }
            }
        }
        prop_assert_eq!(audited.take_violations(), vec![]);
    }

    /// A stale mapping injected at any LPN is always caught, and the
    /// report names that exact LPN.
    #[test]
    fn stale_mapping_detected_at_any_lpn(lpn in 0u64..16) {
        let ftl = populated_ftl();
        let mut state = ftl.audit_snapshot();
        let location = unprogrammed_location(&state);
        state.l2p[lpn as usize] = SlotSnapshot::Mapped(location);
        let violations = FtlAuditorSet::new().audit(&state);
        prop_assert_eq!(
            violations,
            vec![Violation::MappedPageNotProgrammed { lpn, location }]
        );
    }
}
