//! Golden fixture for the determinism pass: one known-bad example per
//! nondeterminism source kind, each behind a small call chain so the
//! chain reporting is pinned too. This file is *parsed*, never
//! compiled — it only has to lex like real Rust.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

pub struct Registry {
    entries: HashMap<u64, u64>,
}

impl Registry {
    fn tally(&self) -> u64 {
        // map-iteration: HashMap value order is process-random.
        self.entries.values().sum()
    }
}

/// The deterministic-output entry point of the fixture crate.
pub fn cache_report(registry: &Registry) -> u64 {
    summarize(registry)
}

fn summarize(registry: &Registry) -> u64 {
    registry.tally() + stamp() + pick_seed() + ambient_noise() + worker_tag() + shared_total()
}

fn stamp() -> u64 {
    // wall-clock: a clock reading outside the stderr-timing allowlist.
    Instant::now().elapsed().as_nanos() as u64
}

fn pick_seed() -> u64 {
    // unseeded-rng: entropy-based construction, not task_seed-derived.
    let mut rng = StdRng::from_entropy();
    rng.next_u64()
}

fn ambient_noise() -> u64 {
    // env-read: a variable outside the declared SOS_* set.
    std::env::var("NODE_NAME").map(|v| v.len() as u64).unwrap_or(0)
}

fn worker_tag() -> u64 {
    // thread-identity: worker identity reaching a result.
    let _ = std::thread::current();
    7
}

fn shared_total() -> u64 {
    // float-reduction: a float accumulator shared across workers.
    let total: Mutex<f64> = Mutex::new(0.0);
    *total.lock().unwrap() as u64
}

fn justified_stamp() -> u64 {
    // sos-lint: allow(nondeterminism, "diagnostic timing, printed to stderr only")
    let started = Instant::now();
    started.elapsed().as_nanos() as u64
}

pub fn diagnostics(registry: &Registry) -> u64 {
    let _ = registry;
    justified_stamp()
}
