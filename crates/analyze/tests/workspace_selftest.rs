//! Self-application: the analyzer must handle its own workspace.
//!
//! Two gates ride on this:
//!
//! * the lexer round-trips every `.rs` file in `crates/*/src` — exact
//!   byte spans, whitespace-only gaps, correct line bookkeeping — so
//!   span-based rules can trust token positions anywhere in the tree;
//! * the tree itself is the zero-finding baseline the CI job enforces:
//!   no unsuppressed lint, panic-path, or nondeterminism findings, and
//!   every configured entry point resolves.

use sos_analyze::{
    deterministic_entry_points, device_hot_entry_points, harness_entry_points,
    recovery_entry_points, run_determinism, run_lints_on, run_panic_path, Workspace,
};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("crates/analyze has a workspace root two levels up")
}

#[test]
fn every_workspace_file_lexes_with_exact_spans() {
    let workspace = Workspace::load(&workspace_root());
    assert!(
        workspace.files.len() >= 50,
        "workspace unexpectedly small ({} files) — wrong root?",
        workspace.files.len()
    );
    for file in &workspace.files {
        let source = &file.source;
        let mut previous_end = 0usize;
        for token in &file.tokens {
            assert!(
                token.start >= previous_end && token.end <= source.len(),
                "{}: token span {}..{} escapes [{previous_end}, {}]",
                file.path.display(),
                token.start,
                token.end,
                source.len()
            );
            let gap = &source[previous_end..token.start];
            assert!(
                gap.chars().all(char::is_whitespace),
                "{}: untokenised non-whitespace before byte {}: {gap:?}",
                file.path.display(),
                token.start
            );
            let expected_line = 1 + source[..token.start].matches('\n').count();
            assert_eq!(
                token.line,
                expected_line,
                "{}: token at byte {} carries line {} but sits on line {expected_line}",
                file.path.display(),
                token.start,
                token.line
            );
            previous_end = token.end;
        }
        let tail = &source[previous_end..];
        assert!(
            tail.chars().all(char::is_whitespace),
            "{}: untokenised trailing bytes: {tail:?}",
            file.path.display()
        );
    }
}

#[test]
fn workspace_is_the_zero_finding_baseline() {
    let workspace = Workspace::load(&workspace_root());
    let lint = run_lints_on(&workspace);
    assert!(
        lint.findings.is_empty(),
        "lint findings in the tree:\n{}",
        lint.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    let mut entry_points = recovery_entry_points();
    entry_points.extend(harness_entry_points());
    entry_points.extend(device_hot_entry_points());
    let report = run_panic_path(&workspace, &entry_points);
    assert!(
        report.missing_entry_points.is_empty(),
        "entry points no longer resolve (renamed?): {:?}",
        report.missing_entry_points
    );
    assert!(
        report.findings.is_empty(),
        "panic-path findings in the tree:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.reachable_fns >= 100,
        "suspiciously small recovery surface: {} fns",
        report.reachable_fns
    );
}

#[test]
fn workspace_has_zero_nondeterminism_findings() {
    let workspace = Workspace::load(&workspace_root());
    let report = run_determinism(&workspace, &deterministic_entry_points());
    assert!(
        report.missing_entry_points.is_empty(),
        "determinism entry points no longer resolve (renamed?): {:?}",
        report.missing_entry_points
    );
    assert!(
        report.findings.is_empty(),
        "nondeterminism findings in the tree:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.reachable_fns >= 100,
        "suspiciously small deterministic-output surface: {} fns",
        report.reachable_fns
    );
    // The runner and the perf kernels time themselves on purpose; the
    // allowlist must keep absorbing those hits (a drop to zero means
    // the allowlist match broke, not that the timing went away).
    assert!(
        report.allowlisted >= 7,
        "stderr-timing allowlist stopped matching: {} hit(s)",
        report.allowlisted
    );
}
