//! Approximate storage of a photo on ageing PLC flash (§4.2 / E7).
//!
//! Stores one encoded image on a worn PLC device under three ECC
//! schemes (none, detect-only, priority-split) and reports PSNR as the
//! device ages — the "slightly degrade in quality over time" behaviour,
//! measured.
//!
//! Run with: `cargo run --release -p sos-examples --bin approx_photo`

use sos_ecc::EccScheme;
use sos_flash::{CellDensity, DeviceConfig, ProgramMode};
use sos_ftl::{Ftl, FtlConfig, ResuscitationPolicy, WearLevelingConfig};
use sos_media::{decode, psnr, synthetic_photo, ImageCodec};

fn ftl_with(scheme: EccScheme, seed: u64) -> Ftl {
    let config = FtlConfig {
        mode: ProgramMode::native(CellDensity::Plc),
        ecc: scheme,
        over_provisioning: 0.07,
        gc_policy: sos_ftl::GcPolicy::Greedy,
        gc_low_watermark: 3,
        gc_high_watermark: 6,
        wear_leveling: WearLevelingConfig::disabled(),
        scrub: sos_ftl::ScrubConfig::default(),
        resuscitation: ResuscitationPolicy::retire_only(),
        ecc_failure_target: 1e-6,
    };
    Ftl::new(
        &DeviceConfig::tiny(CellDensity::Plc).with_seed(seed),
        config,
    )
}

fn main() {
    let image = synthetic_photo(96, 96, 99);
    let codec = ImageCodec::default_photo();
    let encoded = codec.encode(&image).expect("encodes");
    println!("== Photo degradation on worn PLC flash ==");
    println!(
        "image: 96x96, {} bytes encoded, protected prefix suggestion {} bytes\n",
        encoded.len(),
        encoded.protected_prefix(1)
    );
    println!(
        "{:<16} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "scheme", "wear", "fresh", "+180d", "+360d", "+720d"
    );
    let schemes = [
        ("none", EccScheme::None),
        ("detect-only", EccScheme::DetectOnly),
        (
            "priority-split",
            EccScheme::PrioritySplit {
                t: 18,
                protected_chunks: 1,
            },
        ),
        ("full-bch", EccScheme::Bch { t: 18 }),
    ];
    for (name, scheme) in schemes {
        let mut ftl = ftl_with(scheme, 7);
        // Pre-wear the device to ~80% of PLC rated endurance by cycling
        // the blocks under it.
        let cap = ftl.logical_pages();
        let filler = vec![0xA5u8; ftl.page_bytes()];
        for lpn in 0..cap {
            ftl.write(lpn, &filler).expect("fill");
        }
        let mut x = 9u64;
        for _ in 0..60 * cap {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ftl.write(x % cap, &filler).expect("wear");
        }
        // Store the photo across pages.
        let page_bytes = ftl.page_bytes();
        let pages = encoded.bytes.chunks(page_bytes);
        let lpns: Vec<u64> = (0..pages.len() as u64).collect();
        for (lpn, chunk) in lpns.iter().zip(encoded.bytes.chunks(page_bytes)) {
            let mut page = vec![0u8; page_bytes];
            page[..chunk.len()].copy_from_slice(chunk);
            ftl.write(*lpn, &page).expect("store photo");
        }
        let mut row = format!("{:<16} {:>5}%", name, 80);
        for _ in 0..4 {
            let mut bytes = Vec::new();
            for &lpn in &lpns {
                bytes.extend_from_slice(&ftl.read(lpn).expect("read").data);
            }
            bytes.truncate(encoded.len());
            let quality = match decode(&bytes) {
                Ok(img) => psnr(&image, &img).min(99.0),
                Err(_) => 0.0,
            };
            row.push_str(&format!(" {quality:>9.1}dB"));
            ftl.advance_days(180.0);
        }
        // Shift columns: first measurement was "fresh", the rest aged.
        println!("{row}");
    }
    println!("\n(0.0 dB = header destroyed; priority-split keeps the header alive)");
}
