//! Prints the paper's carbon arithmetic, recomputed (§1, §3, §4.1).
//!
//! Run with: `cargo run -p sos-examples --bin carbon_report`

use sos_carbon::{
    all_claims, design_comparison, format_claims, market_2020, personal_share, project,
    CarbonPricing, EmbodiedModel, ProjectionConfig,
};

fn main() {
    println!("== Flash carbon footprint: the paper's numbers, recomputed ==\n");

    // Figure 1: market mix.
    println!("Figure 1 — flash market share by device type (2020):");
    for slice in market_2020() {
        println!(
            "  {:<12} {:>5.1}%  (device life {:>4.1} y, flash life {:>4.1} y, gap {:>4.1}x)",
            format!("{:?}", slice.category),
            slice.share * 100.0,
            slice.device_life_years,
            slice.flash_life_years,
            slice.flash_life_years / slice.device_life_years,
        );
    }
    println!(
        "  personal devices (phone+tablet): {:.0}% of flash bits\n",
        personal_share(&market_2020()) * 100.0
    );

    // §1/§3 projection.
    println!("Production emissions projection (2021 -> 2030):");
    println!(
        "  {:<6} {:>12} {:>10} {:>12} {:>14}",
        "year", "EB produced", "kg/GB", "Mt CO2e", "people-equiv"
    );
    for year in project(&ProjectionConfig::paper_baseline(), 2030) {
        println!(
            "  {:<6} {:>12.0} {:>10.3} {:>12.1} {:>12.1}M",
            year.year,
            year.production_eb,
            year.kg_per_gb,
            year.emissions_mt,
            year.people_equivalents_m
        );
    }

    // §3 pricing.
    let pricing = CarbonPricing::paper_2023();
    println!(
        "\nCarbon pricing: ${:.0}/t x {:.2} kg/GB = ${:.2}/TB = {:.0}% of ${:.0}/TB QLC",
        pricing.usd_per_tonne,
        pricing.kg_per_gb,
        pricing.carbon_usd_per_tb(),
        pricing.price_uplift() * 100.0,
        pricing.flash_usd_per_tb
    );

    // §4 design comparison.
    println!("\nDesign comparison (embodied kgCO2e per exported GB):");
    for design in design_comparison(&EmbodiedModel::default(), 0.5) {
        println!(
            "  {:<28} {:>8.4} kg/GB  ({:>5.1}% of TLC)",
            design.name,
            design.kg_per_gb,
            design.vs_tlc * 100.0
        );
    }

    // Claim-by-claim reproduction.
    println!("\nClaim reproduction table:");
    println!("{}", format_claims(&all_claims()));
}
