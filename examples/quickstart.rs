//! Quickstart: the Figure 2 walk-through.
//!
//! Creates an SOS device, writes a critical document and a casual photo,
//! lets the classifier daemon demote the photo to the degradable SPARE
//! partition, ages the device, and reads everything back.
//!
//! Run with: `cargo run -p sos-examples --bin quickstart`

use sos_classify::{multi_user_corpus, Classifier, FeatureExtractor, LogisticRegression};
use sos_classify::{Daemon, DaemonConfig};
use sos_core::{ObjectStore, Partition, SosConfig, SosDevice};
use sos_media::{decode, psnr, synthetic_photo, ImageCodec};
use sos_workload::{FileClass, FileMeta};

fn main() {
    println!("== SOS quickstart: host-device co-design in five steps ==\n");

    // 1. Build the split device: PLC silicon, half pseudo-QLC (SYS),
    //    half native PLC (SPARE).
    let mut device = SosDevice::new(&SosConfig::small(7));
    println!(
        "device: {:.1} MiB exported ({} B SYS-page)",
        device.capacity_bytes() as f64 / (1 << 20) as f64,
        device.partition(Partition::Sys).page_bytes(),
    );

    // 2. Train the §4.4 classifier on a multi-user corpus.
    let extractor = FeatureExtractor::default();
    let corpus = multi_user_corpus(&extractor, 2, 42);
    let mut model = LogisticRegression::default();
    model.train(&corpus.features, &corpus.labels);
    let daemon = Daemon::new(model, extractor, DaemonConfig::default());
    println!("classifier: trained on {} labelled files", corpus.len());

    // 3. New data lands on SYS (pseudo-QLC) first.
    let codec = ImageCodec::default_photo();
    let photo = synthetic_photo(96, 96, 1234);
    let encoded = codec.encode(&photo).expect("encodes");
    let document = b"tax return 2025 - keep forever".to_vec();
    device.put(1, &document, Partition::Sys).expect("space");
    device
        .put(2, &encoded.bytes, Partition::Sys)
        .expect("space");
    println!(
        "wrote: document ({} B), photo ({} B) -> SYS",
        document.len(),
        encoded.len()
    );

    // 4. The daemon reviews file metadata and demotes the casual photo.
    let files = [
        FileMeta {
            id: 1,
            class: FileClass::Document,
            size: document.len() as u64,
            created_day: 0.0,
            last_access_day: 20.0,
            access_count: 14,
            update_count: 3,
            significance: 0.9,
            path: "/sdcard/Documents/f000001.pdf".into(),
        },
        FileMeta {
            id: 2,
            class: FileClass::PhotoCasual,
            size: 3 << 20,
            created_day: 0.0,
            last_access_day: 1.0,
            access_count: 1,
            update_count: 0,
            significance: 0.05,
            path: "/sdcard/DCIM/f000002.jpg".into(),
        },
    ];
    for decision in daemon.deletion_recommendations(files.iter(), 60.0) {
        println!(
            "auto-delete candidate: file {} (score {:.1})",
            decision.0, decision.1
        );
    }
    for meta in &files {
        let decision = daemon.classify(meta, 60.0);
        println!(
            "classify {}: spare-probability {:.2} -> {:?}",
            meta.path, decision.spare_probability, decision.placement
        );
        if decision.placement == sos_classify::Placement::Spare {
            device.migrate(meta.id, Partition::Spare).expect("migrates");
        }
    }
    println!(
        "placements: document -> {:?}, photo -> {:?}",
        device.placement(1).unwrap(),
        device.placement(2).unwrap()
    );

    // 5. Age the device two years and read everything back.
    device.advance_days(730.0);
    let _ = device.maintain();
    let doc = device.get(1).expect("document readable");
    assert_eq!(doc.bytes, document, "SYS data must be exact");
    let got = device.get(2).expect("photo readable");
    match decode(&got.bytes) {
        Ok(decoded) => println!(
            "after 2 years: document intact; photo status {:?}, PSNR {:.1} dB",
            got.status,
            psnr(&photo, &decoded)
        ),
        Err(e) => println!("after 2 years: photo undecodable ({e})"),
    }
    println!("\nquickstart complete.");
}
