//! Simulates a full phone life (default 900 days ≈ the 2-3 year use
//! life of §2.3.2) on all three designs and prints the comparison —
//! experiment E11 as a runnable example.
//!
//! Run with: `cargo run --release -p sos-examples --bin phone_lifetime [days]`

use sos_core::{compare, format_comparison, SimConfig};
use sos_workload::UsageProfile;

fn main() {
    let days: u32 = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse().ok())
        .unwrap_or(900);
    println!("== Simulating a {days}-day phone life on three designs ==");
    println!("workload: Typical user profile, media-heavy, 70% fill\n");
    let config = SimConfig {
        days,
        profile: UsageProfile::Typical,
        seed: 2024,
        cloud_coverage: 0.0,
        workload_bytes: 0,
    };
    let results = compare(&config);
    println!("{}", format_comparison(&results));
    let sos = results.last().expect("three results");
    println!(
        "SOS summary: {} demotions, {} auto-deletes, {} rejected creates",
        sos.stats.demotions, sos.stats.autodeletes, sos.stats.rejected_creates
    );
    println!(
        "carbon verdict: SOS at {:.1}% of TLC embodied carbon per exported GB",
        sos.carbon_vs_tlc * 100.0
    );
}
