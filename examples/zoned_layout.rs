//! Host-managed SOS via standard interfaces (§4.3).
//!
//! The paper offers two integration paths besides custom firmware:
//! multi-stream/zoned placement and UFS LUNs. This demo drives both —
//! a ZNS-style layout with per-zone densities, and the UFS facade with
//! its enhanced/degradable units and dynamic capacity.
//!
//! Run with: `cargo run -p sos-examples --bin zoned_layout`

use sos_core::UfsDevice;
use sos_ecc::EccScheme;
use sos_flash::{CellDensity, DeviceConfig, ProgramMode};
use sos_ftl::ZonedDevice;

fn main() {
    println!("== Path 1: ZNS-style zones with per-zone densities ==");
    let mut zoned = ZonedDevice::new(
        &DeviceConfig::tiny(CellDensity::Plc),
        4,
        EccScheme::Bch { t: 18 },
    );
    // The host lays out SOS itself: even zones pseudo-QLC (SYS-class),
    // odd zones native PLC (SPARE-class).
    for zone in 0..zoned.zone_count() {
        let mode = if zone % 2 == 0 {
            Some(ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc))
        } else {
            None
        };
        zoned.reset(zone, mode).expect("reset");
    }
    let page = vec![0xB5u8; zoned.page_bytes()];
    zoned.append(0, &page).expect("SYS-class append");
    zoned.append(1, &page).expect("SPARE-class append");
    println!(
        "zone 0: {} ({} pages) | zone 1: {} ({} pages)",
        zoned.zone_mode(0).unwrap(),
        zoned.zone_capacity(0).unwrap(),
        zoned.zone_mode(1).unwrap(),
        zoned.zone_capacity(1).unwrap(),
    );
    println!(
        "write pointers after one append each: {} / {}",
        zoned.write_pointer(0).unwrap(),
        zoned.write_pointer(1).unwrap()
    );

    println!("\n== Path 2: UFS LUNs with reliability classes ==");
    let mut ufs = UfsDevice::new(&DeviceConfig::tiny(CellDensity::Plc));
    for lun in ufs.luns() {
        println!(
            "LUN {}: {:?}, {} blocks x {} B",
            lun.lun, lun.reliability, lun.capacity_blocks, lun.block_bytes
        );
    }
    let block = vec![0x42u8; ufs.luns()[0].block_bytes as usize];
    ufs.write(0, 0, &block).expect("enhanced write");
    ufs.write(1, 0, &block).expect("degradable write");
    ufs.background(30.0).expect("maintenance");
    let attentions = ufs.take_attentions();
    println!(
        "after 30 days of background maintenance: {} unit attention(s)",
        attentions.len()
    );
    println!("\nboth paths expose the same SOS trade: durable pseudo-QLC units");
    println!("beside degradable native-PLC units, on one die.");
}
