//! Fleet planner: what does switching personal-device production to SOS
//! save at global scale? (§1's exponential-growth argument + §4's
//! design, combined.)
//!
//! Run with: `cargo run -p sos-examples --bin fleet_planner [spare_fraction]`

use sos_carbon::{
    market_2020, personal_share, project, sos_fleet_saving, EmbodiedModel, ProjectionConfig,
};
use sos_flash::density::split_device_bits_per_cell;
use sos_flash::{CellDensity, ProgramMode};

fn main() {
    let spare_fraction: f64 = std::env::args()
        .nth(1)
        .and_then(|arg| arg.parse::<f64>().ok())
        .unwrap_or(0.5)
        .clamp(0.0, 1.0);
    let model = EmbodiedModel::default();
    let personal = personal_share(&market_2020());
    let spare = ProgramMode::native(CellDensity::Plc);
    let sys = ProgramMode::pseudo(CellDensity::Plc, CellDensity::Qlc);
    let bits = split_device_bits_per_cell(spare_fraction, spare, sys);

    println!("== SOS fleet planner ==");
    println!(
        "split: {:.0}% PLC SPARE / {:.0}% pseudo-QLC SYS -> {:.2} bits/cell ({:+.1}% vs TLC)\n",
        spare_fraction * 100.0,
        (1.0 - spare_fraction) * 100.0,
        bits,
        (bits / 3.0 - 1.0) * 100.0
    );
    println!(
        "  {:<6} {:>12} {:>14} {:>14} {:>14}",
        "year", "EB produced", "baseline Mt", "with SOS Mt", "saved Mt"
    );
    let mut cumulative = 0.0;
    for year in project(&ProjectionConfig::paper_baseline(), 2030) {
        let (baseline, sos) =
            sos_fleet_saving(&model, year.production_eb, personal, spare_fraction);
        // Non-personal production is unchanged.
        let other = year.emissions_mt - baseline;
        let with_sos = other + sos;
        cumulative += year.emissions_mt - with_sos;
        println!(
            "  {:<6} {:>12.0} {:>14.1} {:>14.1} {:>14.1}",
            year.year,
            year.production_eb,
            year.emissions_mt,
            with_sos,
            year.emissions_mt - with_sos
        );
    }
    println!(
        "\ncumulative 2021-2030 saving: {:.0} Mt CO2e (~{:.1}M people-years at world-average emissions)",
        cumulative,
        cumulative / 4.4
    );
}
