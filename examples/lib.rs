//! Shared helpers for the SOS examples.
